#include "sim/sim_engine.hpp"

#include <algorithm>
#include <chrono>
#include <queue>

#include "celllib/cell.hpp"
#include "delay/elmore.hpp"
#include "gategraph/gate_graph.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace tr::sim {

using gategraph::GateGraph;
using netlist::GateId;
using netlist::NetId;

namespace {

/// Padded reference event — kept byte-for-byte as before the hot-path
/// rewrite; the compact replacement is EventScheduler's 16-byte key +
/// 4-byte payload (DESIGN.md Sec. 10.1).
struct Event {
  double time = 0.0;
  /// Topological level of the driven net (0 for primary inputs).
  /// Events at identical times process in level order (delta-cycle
  /// levelization), which makes the zero-delay mode glitch-free: a gate
  /// re-evaluates only after all same-instant fan-in updates have
  /// settled, so only functionally required transitions commit.
  int level = 0;
  std::uint64_t seq = 0;  ///< FIFO tie-break within a level
  enum class Kind : std::uint8_t { pi_toggle, gate_commit } kind = Kind::pi_toggle;
  int index = 0;  ///< NetId for pi_toggle, GateId for gate_commit
  bool value = false;
  std::uint64_t version = 0;  ///< gate_commit validity check

  bool operator>(const Event& rhs) const {
    if (time != rhs.time) return time > rhs.time;
    if (level != rhs.level) return level > rhs.level;
    return seq > rhs.seq;
  }
};

/// Per-gate mutable state of one reference replication.
struct GateState {
  std::uint64_t input_minterm = 0;
  std::vector<bool> internal_state;
  /// Inertial-delay bookkeeping: a scheduled commit is valid only if its
  /// version matches.
  std::uint64_t version = 0;
  bool has_pending = false;
  bool pending_value = false;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Fills the wall-clock diagnostics, the only SimResult fields that are
/// not a pure function of the seed.
void stamp_diagnostics(SimResult& result, double elapsed,
                       std::size_t scratch_bytes) {
  result.elapsed_seconds = elapsed;
  result.events_per_sec =
      elapsed > 0.0 ? static_cast<double>(result.event_count) / elapsed : 0.0;
  result.scratch_bytes = scratch_bytes;
}

}  // namespace

std::size_t ReplicationScratch::high_water_bytes() const noexcept {
  return net_value.capacity() * sizeof(std::uint8_t) +
         net_obs.capacity() * sizeof(NetObs) +
         gate_mut.capacity() * sizeof(GateMut) +
         internal_state.capacity() * sizeof(std::uint8_t) +
         scheduler.allocated_bytes();
}

/// One reference replication: the pre-rewrite event loop, retained
/// verbatim as the differential oracle (DESIGN.md Sec. 10.5). Owns every
/// piece of mutable simulation state and reads the engine's immutable
/// tables; constructing and running a Replication never touches the
/// engine, which is what makes concurrent SimEngine runs safe and
/// thread-count independent.
struct SimEngine::Replication {
  Replication(const SimEngine& engine, std::uint64_t seed)
      : e(engine), rng(seed) {}

  SimResult run() {
    initialize_state();
    const SimOptions& options = e.options_;
    const double t_end = options.warmup_time + options.measure_time;
    const bool cancellable = options.cancel.valid();
    double t_final = t_end;

    while (!queue.empty()) {
      const Event ev = queue.top();
      if (ev.time > t_end) break;
      if (result.event_count >= options.max_events) {
        // Runaway guard (oscillation or pathological configuration):
        // stop and report the partial window instead of silently
        // pretending the full window was measured.
        result.truncated = true;
        t_final = last_event_time;
        break;
      }
      queue.pop();
      ++result.event_count;
      // Same polling period as FastRun so both loops cancel within the
      // same bounded event lag (DESIGN.md Sec. 12.3).
      if (cancellable && (result.event_count & 8191u) == 0) {
        options.cancel.check("simulate");
      }
      last_event_time = ev.time;
      if (ev.kind == Event::Kind::pi_toggle) {
        handle_pi_toggle(ev);
      } else {
        handle_gate_commit(ev);
      }
    }

    finalize(t_final);
    return std::move(result);
  }

private:
  void initialize_state() {
    const int n = e.netlist_.net_count();
    net_value.assign(static_cast<std::size_t>(n), false);
    last_change.assign(static_cast<std::size_t>(n), 0.0);
    ones_time.assign(static_cast<std::size_t>(n), 0.0);
    transitions.assign(static_cast<std::size_t>(n), 0);
    gate_state.resize(e.gates_.size());
    result.per_gate_energy.assign(
        static_cast<std::size_t>(e.netlist_.gate_count()), 0.0);
    result.per_gate_output_energy.assign(
        static_cast<std::size_t>(e.netlist_.gate_count()), 0.0);

    // Initial PI values are equilibrium draws, in the fixed pi_order_ so
    // the RNG stream is identical for every replication index scheme.
    for (NetId id : e.pi_order_) {
      net_value[static_cast<std::size_t>(id)] =
          rng.bernoulli(e.pi_[static_cast<std::size_t>(id)].prob);
    }

    // Steady-state logic values from the initial PI assignment.
    for (GateId g : e.topo_order_) {
      const netlist::GateInst& inst = e.netlist_.gate(g);
      const GateTables& tables = e.gates_[static_cast<std::size_t>(g)];
      GateState& st = gate_state[static_cast<std::size_t>(g)];
      std::uint64_t minterm = 0;
      for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
        if (net_value[static_cast<std::size_t>(inst.inputs[pin])]) {
          minterm |= 1ULL << pin;
        }
      }
      st.input_minterm = minterm;
      net_value[static_cast<std::size_t>(inst.output)] =
          tables.output_fn.value_at(minterm);
      st.internal_state.assign(tables.h_fns.size(), false);
      for (std::size_t k = 0; k < tables.h_fns.size(); ++k) {
        // Undriven nodes start discharged; any driven node takes its
        // rail value.
        st.internal_state[k] = tables.h_fns[k].value_at(minterm);
      }
    }

    // Seed PI toggle events.
    for (NetId id : e.pi_order_) schedule_pi_toggle(id, 0.0);
  }

  void schedule_pi_toggle(NetId id, double now) {
    const PiProcess& p = e.pi_[static_cast<std::size_t>(id)];
    const bool current = net_value[static_cast<std::size_t>(id)];
    const double rate = current ? p.rate_down : p.rate_up;
    if (rate <= 0.0) return;  // frozen input
    Event ev;
    ev.time = now + rng.exponential(rate);
    ev.level = 0;
    ev.seq = next_seq++;
    ev.kind = Event::Kind::pi_toggle;
    ev.index = id;
    ev.value = !current;
    queue.push(ev);
  }

  void handle_pi_toggle(const Event& ev) {
    const NetId net = ev.index;
    TR_ASSERT(net_value[static_cast<std::size_t>(net)] != ev.value);
    record_net_change(net, ev.time);
    net_value[static_cast<std::size_t>(net)] = ev.value;
    if (ev.time >= e.options_.warmup_time && e.options_.count_pi_energy) {
      const double energy = e.tech_.energy_per_transition(
          e.pi_[static_cast<std::size_t>(net)].load_cap);
      result.pi_energy += energy;
      result.energy += energy;
    }
    propagate_net_change(net, ev.time);
    schedule_pi_toggle(net, ev.time);
  }

  void handle_gate_commit(const Event& ev) {
    GateState& st = gate_state[static_cast<std::size_t>(ev.index)];
    if (!st.has_pending || ev.version != st.version) return;  // cancelled
    st.has_pending = false;
    const NetId net = e.netlist_.gate(ev.index).output;
    if (net_value[static_cast<std::size_t>(net)] == ev.value) return;
    record_net_change(net, ev.time);
    net_value[static_cast<std::size_t>(net)] = ev.value;
    if (ev.time >= e.options_.warmup_time) {
      const double energy = e.tech_.energy_per_transition(
          e.gates_[static_cast<std::size_t>(ev.index)].output_cap);
      result.output_node_energy += energy;
      result.energy += energy;
      result.per_gate_energy[static_cast<std::size_t>(ev.index)] += energy;
      result.per_gate_output_energy[static_cast<std::size_t>(ev.index)] +=
          energy;
    }
    propagate_net_change(net, ev.time);
  }

  void propagate_net_change(NetId net, double now) {
    for (const auto& [gate, pin] : e.netlist_.net(net).fanouts) {
      GateState& st = gate_state[static_cast<std::size_t>(gate)];
      st.input_minterm ^= 1ULL << pin;
      update_internal_nodes(gate, st, now);
      evaluate_output(gate, st, pin, now);
    }
  }

  void update_internal_nodes(GateId gate, GateState& st, double now) {
    const GateTables& tables = e.gates_[static_cast<std::size_t>(gate)];
    for (std::size_t k = 0; k < tables.h_fns.size(); ++k) {
      const bool h = tables.h_fns[k].value_at(st.input_minterm);
      const bool g = tables.g_fns[k].value_at(st.input_minterm);
      TR_ASSERT(!(h && g));  // no rail-to-rail short
      const bool next = h ? true : (g ? false : st.internal_state[k]);
      if (next != st.internal_state[k]) {
        st.internal_state[k] = next;
        if (now >= e.options_.warmup_time) {
          const double energy =
              e.tech_.energy_per_transition(tables.internal_caps[k]);
          result.internal_node_energy += energy;
          result.energy += energy;
          result.per_gate_energy[static_cast<std::size_t>(gate)] += energy;
        }
      }
    }
  }

  void evaluate_output(GateId gate, GateState& st, int pin, double now) {
    const GateTables& tables = e.gates_[static_cast<std::size_t>(gate)];
    const bool steady = tables.output_fn.value_at(st.input_minterm);
    const NetId out = e.netlist_.gate(gate).output;
    const bool target = st.has_pending
                            ? st.pending_value
                            : net_value[static_cast<std::size_t>(out)];
    if (steady == target) {
      // Inertial filtering: a pending pulse shorter than the gate delay is
      // swallowed by cancelling the scheduled commit.
      if (st.has_pending && st.pending_value != steady) {
        st.has_pending = false;
        ++st.version;
      }
      return;
    }
    ++st.version;
    st.has_pending = true;
    st.pending_value = steady;
    Event ev;
    ev.time = now + tables.pin_delay[static_cast<std::size_t>(pin)];
    ev.level = tables.level;
    ev.seq = next_seq++;
    ev.kind = Event::Kind::gate_commit;
    ev.index = gate;
    ev.value = steady;
    ev.version = st.version;
    queue.push(ev);
  }

  void record_net_change(NetId net, double now) {
    const double start = e.options_.warmup_time;
    if (now > start) {
      const double from = last_change[static_cast<std::size_t>(net)] > start
                              ? last_change[static_cast<std::size_t>(net)]
                              : start;
      if (net_value[static_cast<std::size_t>(net)]) {
        ones_time[static_cast<std::size_t>(net)] += now - from;
      }
      ++transitions[static_cast<std::size_t>(net)];
    }
    last_change[static_cast<std::size_t>(net)] = now;
  }

  void finalize(double t_final) {
    result.nets.resize(static_cast<std::size_t>(e.netlist_.net_count()));
    const double start = e.options_.warmup_time;
    const double window = std::max(0.0, t_final - start);
    result.measured_time = window;
    for (NetId id = 0; id < e.netlist_.net_count(); ++id) {
      const std::size_t v = static_cast<std::size_t>(id);
      double ones = ones_time[v];
      if (net_value[v] && t_final > start) {
        const double from = last_change[v] > start ? last_change[v] : start;
        ones += t_final - from;
      }
      result.nets[v].prob = window > 0.0 ? ones / window : 0.0;
      result.nets[v].density =
          window > 0.0 ? static_cast<double>(transitions[v]) / window : 0.0;
    }
    result.power = window > 0.0 ? result.energy / window : 0.0;
  }

  const SimEngine& e;
  Rng rng;

  std::vector<GateState> gate_state;
  std::vector<bool> net_value;
  std::vector<double> last_change;
  std::vector<double> ones_time;
  std::vector<std::uint64_t> transitions;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t next_seq = 0;
  double last_event_time = 0.0;
  SimResult result;
};

/// The rewritten hot path (DESIGN.md Sec. 10.2): same algorithm, same
/// RNG draw order, same floating-point accumulation order as the
/// reference Replication above — pinned bit-identical by the
/// differential suite — but running entirely on the engine's flat
/// structure-of-arrays tables, the scratch's byte arenas and the indexed
/// event scheduler.
struct SimEngine::FastRun {
  FastRun(const SimEngine& engine, ReplicationScratch& scratch,
          SimResult& out, std::uint64_t seed)
      : e(engine), s(scratch), result(out), rng(seed) {}

  void run() {
    initialize_state();
    const double t_end = e.options_.warmup_time + e.options_.measure_time;
    const std::uint64_t max_events = e.options_.max_events;
    const bool cancellable = e.options_.cancel.valid();
    double t_final = t_end;

    EventScheduler::Event ev;
    while (s.scheduler.peek(ev)) {
      if (ev.time > t_end) break;
      if (result.event_count >= max_events) {
        result.truncated = true;
        t_final = last_event_time;
        break;
      }
      s.scheduler.pop();
      ++result.event_count;
      // Polled every 8192 events: bounded cancellation lag at a cost the
      // throughput gate cannot see (one hoisted bool test per event).
      if (cancellable && (result.event_count & 8191u) == 0) {
        e.options_.cancel.check("simulate");
      }
      last_event_time = ev.time;
      if ((ev.payload & 1u) == 0) {
        handle_pi_toggle(static_cast<NetId>(ev.payload >> 1), ev.time);
      } else {
        handle_gate_commit(static_cast<GateId>(ev.payload >> 1), ev.time,
                           ev.order & EventScheduler::max_seq);
      }
    }

    finalize(t_final);
  }

private:
  void initialize_state() {
    const std::size_t nets = static_cast<std::size_t>(e.netlist_.net_count());
    const std::size_t gates =
        static_cast<std::size_t>(e.netlist_.gate_count());
    const std::size_t nodes = e.flat_node_.size();
    s.net_value.assign(nets, 0);
    s.net_obs.assign(nets, ReplicationScratch::NetObs{});
    s.gate_mut.resize(gates);  // every field is (re)written below
    s.internal_state.resize(nodes);

    result.energy = 0.0;
    result.power = 0.0;
    result.output_node_energy = 0.0;
    result.internal_node_energy = 0.0;
    result.pi_energy = 0.0;
    result.per_gate_energy.assign(gates, 0.0);
    result.per_gate_output_energy.assign(gates, 0.0);
    result.event_count = 0;
    result.truncated = false;
    result.measured_time = 0.0;

    // Initial PI values are equilibrium draws, in the fixed pi_order_
    // (identical RNG stream to the reference loop).
    for (NetId id : e.pi_order_) {
      s.net_value[static_cast<std::size_t>(id)] =
          rng.bernoulli(e.pi_[static_cast<std::size_t>(id)].prob) ? 1 : 0;
    }

    // Steady-state logic values from the initial PI assignment.
    for (GateId g : e.topo_order_) {
      const std::size_t gi = static_cast<std::size_t>(g);
      const GateHot& hot = e.flat_gate_[gi];
      std::uint64_t minterm = 0;
      const std::uint32_t in_begin = e.flat_in_off_[gi];
      const std::uint32_t in_end = e.flat_in_off_[gi + 1];
      for (std::uint32_t i = in_begin; i < in_end; ++i) {
        if (s.net_value[static_cast<std::size_t>(e.flat_in_net_[i])]) {
          minterm |= std::uint64_t{1} << (i - in_begin);
        }
      }
      s.gate_mut[gi] =
          ReplicationScratch::GateMut{minterm, 0, 0, 0};
      s.net_value[static_cast<std::size_t>(hot.out_net)] =
          static_cast<std::uint8_t>((hot.out_fn >> minterm) & 1u);
      for (std::uint32_t j = hot.node_begin; j < hot.node_end; ++j) {
        s.internal_state[j] =
            static_cast<std::uint8_t>((e.flat_node_[j].h_fn >> minterm) & 1u);
      }
    }

    s.scheduler.reset(e.scheduler_width_,
                      e.options_.scheduler == SchedulerKind::heap
                          ? 0
                          : e.scheduler_buckets_);
    // In-flight events: one outstanding toggle per PI plus pending and
    // not-yet-expired stale commits. Reserving for the typical case up
    // front means replication reuse reaches its allocation-free steady
    // state immediately on most circuits.
    s.scheduler.reserve(e.pi_order_.size() + gates + 64,
                        e.pi_order_.size() + 64);
    for (NetId id : e.pi_order_) schedule_pi_toggle(id, 0.0);
  }

  void schedule_pi_toggle(NetId id, double now) {
    const PiProcess& p = e.pi_[static_cast<std::size_t>(id)];
    const double rate =
        s.net_value[static_cast<std::size_t>(id)] ? p.rate_down : p.rate_up;
    if (rate <= 0.0) return;  // frozen input
    const std::uint64_t seq = next_seq++;
    TR_ASSERT(seq <= EventScheduler::max_seq);
    s.scheduler.push(now + rng.exponential(rate), seq /* level 0 */,
                     static_cast<std::uint32_t>(id) << 1);
  }

  void handle_pi_toggle(NetId net, double now) {
    const std::size_t v = static_cast<std::size_t>(net);
    record_net_change(net, now);
    s.net_value[v] ^= 1u;  // a PI toggle always flips (one event stream)
    if (now >= e.options_.warmup_time && e.options_.count_pi_energy) {
      const double energy = e.pi_[v].energy;
      result.pi_energy += energy;
      result.energy += energy;
    }
    propagate_net_change(net, now);
    schedule_pi_toggle(net, now);
  }

  void handle_gate_commit(GateId gate, double now, std::uint64_t seq) {
    const std::size_t gi = static_cast<std::size_t>(gate);
    ReplicationScratch::GateMut& mut = s.gate_mut[gi];
    if (!mut.pending_flag || seq != mut.pending_seq) return;  // cancelled
    mut.pending_flag = 0;
    const GateHot& hot = e.flat_gate_[gi];
    const NetId net = hot.out_net;
    const std::uint8_t value = mut.pending_value;
    if (s.net_value[static_cast<std::size_t>(net)] == value) return;
    record_net_change(net, now);
    s.net_value[static_cast<std::size_t>(net)] = value;
    if (now >= e.options_.warmup_time) {
      const double energy = hot.out_energy;
      result.output_node_energy += energy;
      result.energy += energy;
      result.per_gate_energy[gi] += energy;
      result.per_gate_output_energy[gi] += energy;
    }
    propagate_net_change(net, now);
  }

  void propagate_net_change(NetId net, double now) {
    const double warmup = e.options_.warmup_time;
    const std::uint32_t arc_end =
        e.flat_arc_off_[static_cast<std::size_t>(net) + 1];
    for (std::uint32_t a = e.flat_arc_off_[static_cast<std::size_t>(net)];
         a < arc_end; ++a) {
      const Arc arc = e.flat_arc_[a];
      const std::size_t gi = arc.gate_pin >> 3;
      const GateHot& hot = e.flat_gate_[gi];
      ReplicationScratch::GateMut& mut = s.gate_mut[gi];
      const std::uint64_t minterm =
          (mut.input_minterm ^= std::uint64_t{1} << (arc.gate_pin & 7u));

      // Internal stack nodes: charge on H, discharge on G, retain else.
      for (std::uint32_t j = hot.node_begin; j < hot.node_end; ++j) {
        const NodeHot& node = e.flat_node_[j];
        const std::uint8_t h =
            static_cast<std::uint8_t>((node.h_fn >> minterm) & 1u);
        const std::uint8_t g =
            static_cast<std::uint8_t>((node.g_fn >> minterm) & 1u);
        TR_ASSERT((h & g) == 0);  // no rail-to-rail short
        const std::uint8_t next =
            static_cast<std::uint8_t>(h | (s.internal_state[j] & (g ^ 1u)));
        if (next != s.internal_state[j]) {
          s.internal_state[j] = next;
          if (now >= warmup) {
            const double energy = node.energy;
            result.internal_node_energy += energy;
            result.energy += energy;
            result.per_gate_energy[gi] += energy;
          }
        }
      }

      // Output evaluation with inertial filtering: identical decision
      // tree to the reference loop's evaluate_output (whose explicit
      // cancel branch is unreachable — when a commit is pending, target
      // IS the pending value, so steady == target implies the pending
      // commit already drives toward steady and stays valid).
      const std::uint8_t steady =
          static_cast<std::uint8_t>((hot.out_fn >> minterm) & 1u);
      const std::uint8_t target =
          mut.pending_flag
              ? mut.pending_value
              : s.net_value[static_cast<std::size_t>(hot.out_net)];
      if (steady == target) continue;
      mut.pending_flag = 1;
      mut.pending_value = steady;
      const std::uint64_t seq = next_seq++;
      TR_ASSERT(seq <= EventScheduler::max_seq);
      mut.pending_seq = seq;
      s.scheduler.push(now + arc.delay, hot.level_order | seq,
                       (static_cast<std::uint32_t>(gi) << 1) | 1u);
    }
  }

  void record_net_change(NetId net, double now) {
    const std::size_t v = static_cast<std::size_t>(net);
    ReplicationScratch::NetObs& obs = s.net_obs[v];
    const double start = e.options_.warmup_time;
    if (now > start) {
      const double from = obs.last_change > start ? obs.last_change : start;
      if (s.net_value[v]) obs.ones_time += now - from;
      ++obs.transitions;
    }
    obs.last_change = now;
  }

  void finalize(double t_final) {
    result.nets.resize(static_cast<std::size_t>(e.netlist_.net_count()));
    const double start = e.options_.warmup_time;
    const double window = std::max(0.0, t_final - start);
    result.measured_time = window;
    for (NetId id = 0; id < e.netlist_.net_count(); ++id) {
      const std::size_t v = static_cast<std::size_t>(id);
      const ReplicationScratch::NetObs& obs = s.net_obs[v];
      double ones = obs.ones_time;
      if (s.net_value[v] && t_final > start) {
        const double from = obs.last_change > start ? obs.last_change : start;
        ones += t_final - from;
      }
      result.nets[v].prob = window > 0.0 ? ones / window : 0.0;
      result.nets[v].density =
          window > 0.0 ? static_cast<double>(obs.transitions) / window : 0.0;
    }
    result.power = window > 0.0 ? result.energy / window : 0.0;
  }

  const SimEngine& e;
  ReplicationScratch& s;
  SimResult& result;
  Rng rng;
  std::uint64_t next_seq = 0;
  double last_event_time = 0.0;
};

SimEngine::SimEngine(const netlist::Netlist& netlist,
                     const PiStatsTable& pi_stats, const celllib::Tech& tech,
                     const SimOptions& options)
    : netlist_(netlist), tech_(tech), options_(options) {
  netlist_.validate();
  require(options_.measure_time > 0.0, "switch_sim: measure_time must be > 0");
  delay_model_ = options_.delay_model;
  if (delay_model_ == DelayModel::automatic) {
    delay_model_ =
        options_.use_gate_delays ? DelayModel::elmore : DelayModel::zero;
  }
  if (delay_model_ == DelayModel::unit) {
    require(options_.unit_delay > 0.0, "switch_sim: unit_delay must be > 0");
  }
  topo_order_ = netlist_.topological_order();
  build_gates();
  build_pis(pi_stats);
  build_flat();
}

SimEngine::SimEngine(const netlist::Netlist& netlist,
                     const std::map<NetId, boolfn::SignalStats>& pi_stats,
                     const celllib::Tech& tech, const SimOptions& options)
    : SimEngine(netlist, PiStatsTable(netlist.net_count(), pi_stats), tech,
                options) {}

void SimEngine::build_gates() {
  // Net levelization for the delta-cycle event ordering.
  std::vector<int> net_level(static_cast<std::size_t>(netlist_.net_count()),
                             0);
  for (GateId g : topo_order_) {
    const netlist::GateInst& inst = netlist_.gate(g);
    int level = 0;
    for (NetId in : inst.inputs) {
      level = std::max(level, net_level[static_cast<std::size_t>(in)]);
    }
    net_level[static_cast<std::size_t>(inst.output)] = level + 1;
  }

  gates_.reserve(static_cast<std::size_t>(netlist_.gate_count()));
  for (GateId g = 0; g < netlist_.gate_count(); ++g) {
    const netlist::GateInst& inst = netlist_.gate(g);
    const GateGraph graph(inst.config);
    const std::vector<double> caps = celllib::node_capacitances(
        graph, tech_, netlist_.external_load(g, tech_));

    GateTables tables;
    tables.output_fn = inst.config.output_function();
    for (int k = 0; k < graph.internal_node_count(); ++k) {
      const int node = GateGraph::first_internal_node + k;
      tables.h_fns.push_back(graph.h_function(node));
      tables.g_fns.push_back(graph.g_function(node));
      tables.internal_caps.push_back(caps[static_cast<std::size_t>(node)]);
    }
    tables.output_cap = caps[GateGraph::output_node];
    switch (delay_model_) {
      case DelayModel::elmore:
        tables.pin_delay = delay::gate_delays(graph, caps, tech_).pin_delay;
        break;
      case DelayModel::unit:
        tables.pin_delay.assign(inst.inputs.size(), options_.unit_delay);
        break;
      default:  // zero-delay (automatic already resolved)
        tables.pin_delay.assign(inst.inputs.size(), 0.0);
        break;
    }
    tables.level = net_level[static_cast<std::size_t>(inst.output)];
    gates_.push_back(std::move(tables));
  }
}

void SimEngine::build_pis(const PiStatsTable& pi_stats) {
  pi_.resize(static_cast<std::size_t>(netlist_.net_count()));
  pi_order_ = netlist_.primary_inputs();
  for (NetId id : pi_order_) {
    const boolfn::SignalStats* s = pi_stats.find(id);
    require(s != nullptr,
            "switch_sim: missing statistics for primary input '" +
                netlist_.net(id).name + "'");
    require(s->prob >= 0.0 && s->prob <= 1.0 && s->density >= 0.0,
            "switch_sim: invalid PI statistics");
    PiProcess p;
    // Two-state CTMC: P(1) = r_up / (r_up + r_down) and the transition
    // density (both edges) is 2 r_up r_down / (r_up + r_down) = D,
    // giving r_up = D / (2 (1-P)), r_down = D / (2 P).
    if (s->density > 0.0 && s->prob > 0.0 && s->prob < 1.0) {
      p.rate_up = s->density / (2.0 * (1.0 - s->prob));
      p.rate_down = s->density / (2.0 * s->prob);
      pi_rate_sum_ += s->density;  // equilibrium toggle rate of this PI
    }
    p.prob = s->prob;
    p.load_cap = tech_.c_wire;
    for (const auto& [fan_gate, pin] : netlist_.net(id).fanouts) {
      p.load_cap += netlist_.library()
                        .cell(netlist_.gate(fan_gate).cell)
                        .pin_capacitance(tech_, pin);
    }
    p.energy = tech_.energy_per_transition(p.load_cap);
    pi_[static_cast<std::size_t>(id)] = p;
  }
}

void SimEngine::build_flat() {
  const std::size_t gates = gates_.size();
  const std::size_t nets = static_cast<std::size_t>(netlist_.net_count());

  // Encoding limits of the packed 16-byte event (DESIGN.md Sec. 10.1):
  // single-word truth tables (<= 6 input pins, and <= 8 for the arc
  // packing), levels in 16 bits, ids in 31. Wider circuits keep working
  // through the reference loop.
  fast_ok_ = netlist_.gate_count() < (1 << 28) &&
             netlist_.net_count() < (1 << 28);
  for (const GateTables& tables : gates_) {
    if (tables.output_fn.var_count() > 6 || tables.level > EventScheduler::max_level) {
      fast_ok_ = false;
    }
  }
  if (!fast_ok_) return;

  flat_gate_.resize(gates);
  flat_in_off_.assign(gates + 1, 0);
  std::uint32_t node_count = 0;
  for (std::size_t gi = 0; gi < gates; ++gi) {
    const GateTables& tables = gates_[gi];
    const netlist::GateInst& inst = netlist_.gate(static_cast<GateId>(gi));
    GateHot& hot = flat_gate_[gi];
    hot.out_fn =
        tables.output_fn.words().empty() ? 0 : tables.output_fn.words()[0];
    hot.level_order = static_cast<std::uint64_t>(tables.level)
                      << EventScheduler::seq_bits;
    hot.node_begin = node_count;
    node_count += static_cast<std::uint32_t>(tables.h_fns.size());
    hot.node_end = node_count;
    hot.out_net = inst.output;
    hot.out_energy = tech_.energy_per_transition(tables.output_cap);
    flat_in_off_[gi + 1] =
        flat_in_off_[gi] + static_cast<std::uint32_t>(inst.inputs.size());
  }

  flat_node_.resize(node_count);
  flat_in_net_.resize(flat_in_off_[gates]);
  for (std::size_t gi = 0; gi < gates; ++gi) {
    const GateTables& tables = gates_[gi];
    const netlist::GateInst& inst = netlist_.gate(static_cast<GateId>(gi));
    for (std::size_t k = 0; k < tables.h_fns.size(); ++k) {
      NodeHot& node = flat_node_[flat_gate_[gi].node_begin + k];
      node.h_fn = tables.h_fns[k].words()[0];
      node.g_fn = tables.g_fns[k].words()[0];
      node.energy = tech_.energy_per_transition(tables.internal_caps[k]);
    }
    for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
      flat_in_net_[flat_in_off_[gi] + pin] = inst.inputs[pin];
    }
  }

  // Fanout arcs, CSR by net. Every (gate, pin) appears as exactly one
  // arc, so the per-pin Elmore delay becomes a per-arc field.
  flat_arc_off_.assign(nets + 1, 0);
  for (std::size_t v = 0; v < nets; ++v) {
    flat_arc_off_[v + 1] =
        flat_arc_off_[v] +
        static_cast<std::uint32_t>(netlist_.net(static_cast<NetId>(v))
                                       .fanouts.size());
  }
  flat_arc_.resize(flat_arc_off_[nets]);
  for (std::size_t v = 0; v < nets; ++v) {
    std::uint32_t a = flat_arc_off_[v];
    for (const auto& [gate, pin] : netlist_.net(static_cast<NetId>(v)).fanouts) {
      flat_arc_[a].delay = gates_[static_cast<std::size_t>(gate)]
                               .pin_delay[static_cast<std::size_t>(pin)];
      flat_arc_[a].gate_pin = (static_cast<std::uint32_t>(gate) << 3) |
                              static_cast<std::uint32_t>(pin);
      ++a;
    }
  }

  // Calendar sizing (DESIGN.md Sec. 10.1). The bucket width targets the
  // mean gap between *popped* events, which is the PI toggle rate times
  // the downstream activity amplification — approximated by the
  // gate-to-PI ratio, the static fanout-cone proxy: too-wide buckets
  // make commit avalanches pile into the cursor bucket and the min-scan
  // quadratic in the burst, which is exactly the measured failure mode.
  // The bucket count scales with the expected in-flight population (one
  // outstanding toggle per PI plus the pending-commit burst). Degenerate
  // processes (no toggling inputs) get pure heap mode.
  if (pi_rate_sum_ > 0.0) {
    const std::size_t pis = pi_order_.size();
    const double amplification =
        std::max(1.0, static_cast<double>(gates) /
                          static_cast<double>(std::max<std::size_t>(pis, 1)));
    std::size_t buckets = 64;
    while (buckets < 4 * pis && buckets < 65536) buckets *= 2;
    scheduler_buckets_ = static_cast<int>(buckets);
    scheduler_width_ = 1.0 / (2.0 * pi_rate_sum_ * amplification);
  } else {
    scheduler_buckets_ = 0;
    scheduler_width_ = 0.0;
  }
}

SimResult SimEngine::run(std::uint64_t seed) const {
  ReplicationScratch scratch;
  SimResult result;
  run(seed, scratch, result);
  return result;
}

SimResult SimEngine::run(std::uint64_t seed,
                         ReplicationScratch& scratch) const {
  SimResult result;
  run(seed, scratch, result);
  return result;
}

void SimEngine::run(std::uint64_t seed, ReplicationScratch& scratch,
                    SimResult& result) const {
  if (util::fault::enabled()) util::fault::check("sim.replicate");
  const auto start = std::chrono::steady_clock::now();
  if (!fast_ok_) {
    result = Replication(*this, seed).run();
    stamp_diagnostics(result, seconds_since(start), 0);
    return;
  }
  FastRun(*this, scratch, result, seed).run();
  stamp_diagnostics(result, seconds_since(start),
                    scratch.high_water_bytes());
}

SimResult SimEngine::run_reference(std::uint64_t seed) const {
  const auto start = std::chrono::steady_clock::now();
  SimResult result = Replication(*this, seed).run();
  stamp_diagnostics(result, seconds_since(start), 0);
  return result;
}

}  // namespace tr::sim
