#include "sim/sim_engine.hpp"

#include <algorithm>
#include <queue>

#include "celllib/cell.hpp"
#include "delay/elmore.hpp"
#include "gategraph/gate_graph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tr::sim {

using gategraph::GateGraph;
using netlist::GateId;
using netlist::NetId;

namespace {

struct Event {
  double time = 0.0;
  /// Topological level of the driven net (0 for primary inputs).
  /// Events at identical times process in level order (delta-cycle
  /// levelization), which makes the zero-delay mode glitch-free: a gate
  /// re-evaluates only after all same-instant fan-in updates have
  /// settled, so only functionally required transitions commit.
  int level = 0;
  std::uint64_t seq = 0;  ///< FIFO tie-break within a level
  enum class Kind : std::uint8_t { pi_toggle, gate_commit } kind = Kind::pi_toggle;
  int index = 0;  ///< NetId for pi_toggle, GateId for gate_commit
  bool value = false;
  std::uint64_t version = 0;  ///< gate_commit validity check

  bool operator>(const Event& rhs) const {
    if (time != rhs.time) return time > rhs.time;
    if (level != rhs.level) return level > rhs.level;
    return seq > rhs.seq;
  }
};

/// Per-gate mutable state of one replication.
struct GateState {
  std::uint64_t input_minterm = 0;
  std::vector<bool> internal_state;
  /// Inertial-delay bookkeeping: a scheduled commit is valid only if its
  /// version matches.
  std::uint64_t version = 0;
  bool has_pending = false;
  bool pending_value = false;
};

}  // namespace

/// One replication: owns every piece of mutable simulation state and
/// reads the engine's immutable tables. Constructing and running a
/// Replication never touches the engine, which is what makes concurrent
/// SimEngine::run calls safe and thread-count independent.
struct SimEngine::Replication {
  Replication(const SimEngine& engine, std::uint64_t seed)
      : e(engine), rng(seed) {}

  SimResult run() {
    initialize_state();
    const SimOptions& options = e.options_;
    const double t_end = options.warmup_time + options.measure_time;
    double t_final = t_end;

    while (!queue.empty()) {
      const Event ev = queue.top();
      if (ev.time > t_end) break;
      if (result.event_count >= options.max_events) {
        // Runaway guard (oscillation or pathological configuration):
        // stop and report the partial window instead of silently
        // pretending the full window was measured.
        result.truncated = true;
        t_final = last_event_time;
        break;
      }
      queue.pop();
      ++result.event_count;
      last_event_time = ev.time;
      if (ev.kind == Event::Kind::pi_toggle) {
        handle_pi_toggle(ev);
      } else {
        handle_gate_commit(ev);
      }
    }

    finalize(t_final);
    return std::move(result);
  }

private:
  void initialize_state() {
    const int n = e.netlist_.net_count();
    net_value.assign(static_cast<std::size_t>(n), false);
    last_change.assign(static_cast<std::size_t>(n), 0.0);
    ones_time.assign(static_cast<std::size_t>(n), 0.0);
    transitions.assign(static_cast<std::size_t>(n), 0);
    gate_state.resize(e.gates_.size());
    result.per_gate_energy.assign(
        static_cast<std::size_t>(e.netlist_.gate_count()), 0.0);
    result.per_gate_output_energy.assign(
        static_cast<std::size_t>(e.netlist_.gate_count()), 0.0);

    // Initial PI values are equilibrium draws, in the fixed pi_order_ so
    // the RNG stream is identical for every replication index scheme.
    for (NetId id : e.pi_order_) {
      net_value[static_cast<std::size_t>(id)] =
          rng.bernoulli(e.pi_[static_cast<std::size_t>(id)].prob);
    }

    // Steady-state logic values from the initial PI assignment.
    for (GateId g : e.topo_order_) {
      const netlist::GateInst& inst = e.netlist_.gate(g);
      const GateTables& tables = e.gates_[static_cast<std::size_t>(g)];
      GateState& st = gate_state[static_cast<std::size_t>(g)];
      std::uint64_t minterm = 0;
      for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
        if (net_value[static_cast<std::size_t>(inst.inputs[pin])]) {
          minterm |= 1ULL << pin;
        }
      }
      st.input_minterm = minterm;
      net_value[static_cast<std::size_t>(inst.output)] =
          tables.output_fn.value_at(minterm);
      st.internal_state.assign(tables.h_fns.size(), false);
      for (std::size_t k = 0; k < tables.h_fns.size(); ++k) {
        // Undriven nodes start discharged; any driven node takes its
        // rail value.
        st.internal_state[k] = tables.h_fns[k].value_at(minterm);
      }
    }

    // Seed PI toggle events.
    for (NetId id : e.pi_order_) schedule_pi_toggle(id, 0.0);
  }

  void schedule_pi_toggle(NetId id, double now) {
    const PiProcess& p = e.pi_[static_cast<std::size_t>(id)];
    const bool current = net_value[static_cast<std::size_t>(id)];
    const double rate = current ? p.rate_down : p.rate_up;
    if (rate <= 0.0) return;  // frozen input
    Event ev;
    ev.time = now + rng.exponential(rate);
    ev.level = 0;
    ev.seq = next_seq++;
    ev.kind = Event::Kind::pi_toggle;
    ev.index = id;
    ev.value = !current;
    queue.push(ev);
  }

  void handle_pi_toggle(const Event& ev) {
    const NetId net = ev.index;
    TR_ASSERT(net_value[static_cast<std::size_t>(net)] != ev.value);
    record_net_change(net, ev.time);
    net_value[static_cast<std::size_t>(net)] = ev.value;
    if (ev.time >= e.options_.warmup_time && e.options_.count_pi_energy) {
      const double energy = e.tech_.energy_per_transition(
          e.pi_[static_cast<std::size_t>(net)].load_cap);
      result.pi_energy += energy;
      result.energy += energy;
    }
    propagate_net_change(net, ev.time);
    schedule_pi_toggle(net, ev.time);
  }

  void handle_gate_commit(const Event& ev) {
    GateState& st = gate_state[static_cast<std::size_t>(ev.index)];
    if (!st.has_pending || ev.version != st.version) return;  // cancelled
    st.has_pending = false;
    const NetId net = e.netlist_.gate(ev.index).output;
    if (net_value[static_cast<std::size_t>(net)] == ev.value) return;
    record_net_change(net, ev.time);
    net_value[static_cast<std::size_t>(net)] = ev.value;
    if (ev.time >= e.options_.warmup_time) {
      const double energy = e.tech_.energy_per_transition(
          e.gates_[static_cast<std::size_t>(ev.index)].output_cap);
      result.output_node_energy += energy;
      result.energy += energy;
      result.per_gate_energy[static_cast<std::size_t>(ev.index)] += energy;
      result.per_gate_output_energy[static_cast<std::size_t>(ev.index)] +=
          energy;
    }
    propagate_net_change(net, ev.time);
  }

  void propagate_net_change(NetId net, double now) {
    for (const auto& [gate, pin] : e.netlist_.net(net).fanouts) {
      GateState& st = gate_state[static_cast<std::size_t>(gate)];
      st.input_minterm ^= 1ULL << pin;
      update_internal_nodes(gate, st, now);
      evaluate_output(gate, st, pin, now);
    }
  }

  void update_internal_nodes(GateId gate, GateState& st, double now) {
    const GateTables& tables = e.gates_[static_cast<std::size_t>(gate)];
    for (std::size_t k = 0; k < tables.h_fns.size(); ++k) {
      const bool h = tables.h_fns[k].value_at(st.input_minterm);
      const bool g = tables.g_fns[k].value_at(st.input_minterm);
      TR_ASSERT(!(h && g));  // no rail-to-rail short
      const bool next = h ? true : (g ? false : st.internal_state[k]);
      if (next != st.internal_state[k]) {
        st.internal_state[k] = next;
        if (now >= e.options_.warmup_time) {
          const double energy =
              e.tech_.energy_per_transition(tables.internal_caps[k]);
          result.internal_node_energy += energy;
          result.energy += energy;
          result.per_gate_energy[static_cast<std::size_t>(gate)] += energy;
        }
      }
    }
  }

  void evaluate_output(GateId gate, GateState& st, int pin, double now) {
    const GateTables& tables = e.gates_[static_cast<std::size_t>(gate)];
    const bool steady = tables.output_fn.value_at(st.input_minterm);
    const NetId out = e.netlist_.gate(gate).output;
    const bool target = st.has_pending
                            ? st.pending_value
                            : net_value[static_cast<std::size_t>(out)];
    if (steady == target) {
      // Inertial filtering: a pending pulse shorter than the gate delay is
      // swallowed by cancelling the scheduled commit.
      if (st.has_pending && st.pending_value != steady) {
        st.has_pending = false;
        ++st.version;
      }
      return;
    }
    ++st.version;
    st.has_pending = true;
    st.pending_value = steady;
    Event ev;
    ev.time = now + tables.pin_delay[static_cast<std::size_t>(pin)];
    ev.level = tables.level;
    ev.seq = next_seq++;
    ev.kind = Event::Kind::gate_commit;
    ev.index = gate;
    ev.value = steady;
    ev.version = st.version;
    queue.push(ev);
  }

  void record_net_change(NetId net, double now) {
    const double start = e.options_.warmup_time;
    if (now > start) {
      const double from = last_change[static_cast<std::size_t>(net)] > start
                              ? last_change[static_cast<std::size_t>(net)]
                              : start;
      if (net_value[static_cast<std::size_t>(net)]) {
        ones_time[static_cast<std::size_t>(net)] += now - from;
      }
      ++transitions[static_cast<std::size_t>(net)];
    }
    last_change[static_cast<std::size_t>(net)] = now;
  }

  void finalize(double t_final) {
    result.nets.resize(static_cast<std::size_t>(e.netlist_.net_count()));
    const double start = e.options_.warmup_time;
    const double window = std::max(0.0, t_final - start);
    result.measured_time = window;
    for (NetId id = 0; id < e.netlist_.net_count(); ++id) {
      const std::size_t v = static_cast<std::size_t>(id);
      double ones = ones_time[v];
      if (net_value[v] && t_final > start) {
        const double from = last_change[v] > start ? last_change[v] : start;
        ones += t_final - from;
      }
      result.nets[v].prob = window > 0.0 ? ones / window : 0.0;
      result.nets[v].density =
          window > 0.0 ? static_cast<double>(transitions[v]) / window : 0.0;
    }
    result.power = window > 0.0 ? result.energy / window : 0.0;
  }

  const SimEngine& e;
  Rng rng;

  std::vector<GateState> gate_state;
  std::vector<bool> net_value;
  std::vector<double> last_change;
  std::vector<double> ones_time;
  std::vector<std::uint64_t> transitions;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t next_seq = 0;
  double last_event_time = 0.0;
  SimResult result;
};

SimEngine::SimEngine(const netlist::Netlist& netlist,
                     const std::map<NetId, boolfn::SignalStats>& pi_stats,
                     const celllib::Tech& tech, const SimOptions& options)
    : netlist_(netlist), tech_(tech), options_(options) {
  netlist_.validate();
  require(options_.measure_time > 0.0, "switch_sim: measure_time must be > 0");
  topo_order_ = netlist_.topological_order();
  build_gates();
  build_pis(pi_stats);
}

void SimEngine::build_gates() {
  // Net levelization for the delta-cycle event ordering.
  std::vector<int> net_level(static_cast<std::size_t>(netlist_.net_count()),
                             0);
  for (GateId g : topo_order_) {
    const netlist::GateInst& inst = netlist_.gate(g);
    int level = 0;
    for (NetId in : inst.inputs) {
      level = std::max(level, net_level[static_cast<std::size_t>(in)]);
    }
    net_level[static_cast<std::size_t>(inst.output)] = level + 1;
  }

  gates_.reserve(static_cast<std::size_t>(netlist_.gate_count()));
  for (GateId g = 0; g < netlist_.gate_count(); ++g) {
    const netlist::GateInst& inst = netlist_.gate(g);
    const GateGraph graph(inst.config);
    const std::vector<double> caps = celllib::node_capacitances(
        graph, tech_, netlist_.external_load(g, tech_));

    GateTables tables;
    tables.output_fn = inst.config.output_function();
    for (int k = 0; k < graph.internal_node_count(); ++k) {
      const int node = GateGraph::first_internal_node + k;
      tables.h_fns.push_back(graph.h_function(node));
      tables.g_fns.push_back(graph.g_function(node));
      tables.internal_caps.push_back(caps[static_cast<std::size_t>(node)]);
    }
    tables.output_cap = caps[GateGraph::output_node];
    if (options_.use_gate_delays) {
      tables.pin_delay = delay::gate_delays(graph, caps, tech_).pin_delay;
    } else {
      tables.pin_delay.assign(inst.inputs.size(), 0.0);
    }
    tables.level = net_level[static_cast<std::size_t>(inst.output)];
    gates_.push_back(std::move(tables));
  }
}

void SimEngine::build_pis(
    const std::map<NetId, boolfn::SignalStats>& pi_stats) {
  pi_.resize(static_cast<std::size_t>(netlist_.net_count()));
  pi_order_ = netlist_.primary_inputs();
  for (NetId id : pi_order_) {
    const auto it = pi_stats.find(id);
    require(it != pi_stats.end(),
            "switch_sim: missing statistics for primary input '" +
                netlist_.net(id).name + "'");
    const boolfn::SignalStats& s = it->second;
    require(s.prob >= 0.0 && s.prob <= 1.0 && s.density >= 0.0,
            "switch_sim: invalid PI statistics");
    PiProcess p;
    // Two-state CTMC: P(1) = r_up / (r_up + r_down) and the transition
    // density (both edges) is 2 r_up r_down / (r_up + r_down) = D,
    // giving r_up = D / (2 (1-P)), r_down = D / (2 P).
    if (s.density > 0.0 && s.prob > 0.0 && s.prob < 1.0) {
      p.rate_up = s.density / (2.0 * (1.0 - s.prob));
      p.rate_down = s.density / (2.0 * s.prob);
    }
    p.prob = s.prob;
    p.load_cap = tech_.c_wire;
    for (const auto& [fan_gate, pin] : netlist_.net(id).fanouts) {
      p.load_cap += netlist_.library()
                        .cell(netlist_.gate(fan_gate).cell)
                        .pin_capacitance(tech_, pin);
    }
    pi_[static_cast<std::size_t>(id)] = p;
  }
}

SimResult SimEngine::run(std::uint64_t seed) const {
  return Replication(*this, seed).run();
}

}  // namespace tr::sim
