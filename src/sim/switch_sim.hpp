#pragma once
// Event-driven switch-level simulation — the reproduction's stand-in for
// the SLS simulator the paper uses to validate the model (Table 3,
// column S; substitution documented in DESIGN.md Sec. 4.2).
//
// This header holds the options/result types, the flat primary-input
// statistics table and the single-replication entry point. The event
// loop itself lives in sim/sim_engine.hpp (`SimEngine`), which
// precomputes the per-netlist tables once and can run any number of
// independent replications; sim/monte_carlo.hpp runs replicated parallel
// simulations with confidence intervals on top of it (DESIGN.md Sec. 8;
// the hot-path architecture — scheduler, arenas, scratch reuse — is
// Sec. 10).
//
// Semantics:
//  * Primary inputs are continuous-time 0-1 Markov processes: holding
//    times are exponential with rates chosen so the equilibrium
//    probability is P and the transition density is D (paper Sec. 5.1:
//    "time intervals between two consecutive transitions follow an
//    exponential distribution with average 1/Dk").
//  * Each gate is simulated at the transistor level: on every input
//    change, each internal stack node charges if its pull-up path
//    function H is true, discharges if its pull-down path function G is
//    true, and *retains its state* otherwise (charge storage; no charge
//    sharing, as the paper assumes).
//  * Outputs commit after a per-pin Elmore delay with inertial
//    filtering, so unequal path delays create glitches — the "useless
//    signal transitions" of paper Sec. 1 — which the stochastic model
//    cannot see. A zero-delay mode exists for model-validation tests.
//  * Every transition of a node with capacitance C costs Vdd^2 * C / 2,
//    matching the model's power convention.

#include <cstdint>
#include <map>
#include <vector>

#include "boolfn/signal.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"
#include "util/cancel.hpp"

namespace tr::sim {

/// Event-scheduler selection (DESIGN.md Sec. 10.1). `automatic` picks
/// the bucketed calendar whenever the circuit fits its packed event
/// encoding and the input processes give it a usable time grid, and the
/// compact binary heap otherwise; the explicit values pin one lane for
/// differential tests. The choice never affects results — only wall
/// time — because both lanes realise the exact (time, level, seq) order.
enum class SchedulerKind : std::uint8_t { automatic, calendar, heap };

/// Commit-delay model selection. `automatic` preserves the legacy
/// `use_gate_delays` flag (true = elmore, false = zero); the explicit
/// values override it. `zero` (glitch-free, delta-cycle levelized) and
/// `unit` (uniform per-arc delay, glitches retained) are the two models
/// the bit-parallel Monte-Carlo lane (sim/bitsim.hpp) accepts; `elmore`
/// keeps the per-pin delay-accurate scalar path.
enum class DelayModel : std::uint8_t { automatic, elmore, zero, unit };

struct SimOptions {
  double warmup_time = 2e-5;   ///< settle time before measuring [s]
  double measure_time = 1e-3;  ///< measurement window [s]
  std::uint64_t seed = 1;      ///< RNG seed for the input processes
  bool count_pi_energy = true; ///< include PI-net load switching energy
  bool use_gate_delays = true; ///< legacy delay toggle (see delay_model)
  /// Delay-model selection; `automatic` defers to use_gate_delays.
  DelayModel delay_model = DelayModel::automatic;
  /// Uniform per-arc commit delay under DelayModel::unit [s]; must be
  /// > 0 (an actual zero would silently change the glitch semantics —
  /// ask for DelayModel::zero instead).
  double unit_delay = 1e-12;
  std::uint64_t max_events = 200'000'000;  ///< runaway guard
  SchedulerKind scheduler = SchedulerKind::automatic;
  /// Cooperative cancellation, polled every few thousand events in the
  /// replication loops (scalar and bit-parallel agree: a cancelled
  /// replication throws tr::util::Cancelled and yields no partial
  /// SimResult). The default token is inert and costs nothing.
  util::CancellationToken cancel;
};

/// Flat NetId-indexed primary-input statistics: the boundary type the
/// simulation layer consumes (DESIGN.md Sec. 10.3). Built once — from a
/// legacy std::map or filled directly — and then O(1)-indexed at the
/// SimEngine / switch_sim / monte_carlo boundaries; every map-taking
/// entry point is a thin convenience overload over this.
class PiStatsTable {
public:
  PiStatsTable() = default;

  /// An empty table over `net_count` nets (no PI has statistics yet).
  explicit PiStatsTable(int net_count);

  /// Flattens a NetId-keyed map over a `net_count`-net netlist.
  PiStatsTable(int net_count,
               const std::map<netlist::NetId, boolfn::SignalStats>& stats);

  void set(netlist::NetId net, const boolfn::SignalStats& stats);

  /// The statistics recorded for `net`, or nullptr when none were set
  /// (also for out-of-range ids, so callers can probe safely).
  const boolfn::SignalStats* find(netlist::NetId net) const noexcept;

  int net_count() const noexcept { return static_cast<int>(stats_.size()); }

private:
  std::vector<boolfn::SignalStats> stats_;
  std::vector<std::uint8_t> present_;
};

/// Time-weighted statistics observed on one net during the window.
struct NetObservation {
  double prob = 0.0;     ///< fraction of time at '1'
  double density = 0.0;  ///< transitions per second
};

struct SimResult {
  double energy = 0.0;          ///< total switching energy in window [J]
  double power = 0.0;           ///< energy / measured_time [W]
  double output_node_energy = 0.0;
  double internal_node_energy = 0.0;
  double pi_energy = 0.0;
  std::vector<double> per_gate_energy;  ///< indexed by GateId [J]
  /// Output-node share of per_gate_energy (no internal nodes), the
  /// simulated side of the exact output-node model bridge (DESIGN.md
  /// Sec. 2, "output-node consistency property").
  std::vector<double> per_gate_output_energy;
  std::vector<NetObservation> nets;     ///< indexed by NetId
  std::uint64_t event_count = 0;
  /// True when the run hit `max_events` and stopped early. The result
  /// then covers only the partial window `measured_time`; consumers that
  /// need a complete window (the differential validation suite, the
  /// Monte-Carlo summaries) must check this flag and fail loudly.
  bool truncated = false;
  /// The window the statistics are normalised over [s]: `measure_time`
  /// for a complete run, the simulated prefix for a truncated one.
  double measured_time = 0.0;

  // Throughput diagnostics (DESIGN.md Sec. 10.4). Wall-clock figures —
  // *excluded* from the determinism contract: every field above is a
  // pure function of the seed, these three depend on the machine.
  double elapsed_seconds = 0.0;  ///< wall time of this replication [s]
  double events_per_sec = 0.0;   ///< event_count / elapsed_seconds
  /// High-water bytes of the replication scratch (state arenas + event
  /// queue) after this run; 0 for the reference engine, which allocates
  /// per call instead of using a scratch.
  std::size_t scratch_bytes = 0;
};

/// Runs one replication. `pi_stats` must cover every primary input.
SimResult simulate(const netlist::Netlist& netlist,
                   const PiStatsTable& pi_stats, const celllib::Tech& tech,
                   const SimOptions& options);

/// Convenience overload over the legacy map boundary.
SimResult simulate(const netlist::Netlist& netlist,
                   const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
                   const celllib::Tech& tech, const SimOptions& options);

}  // namespace tr::sim
