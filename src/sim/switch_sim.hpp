#pragma once
// Event-driven switch-level simulator — the reproduction's stand-in for
// the SLS simulator the paper uses to validate the model (Table 3,
// column S; substitution documented in DESIGN.md Sec. 4.2).
//
// Semantics:
//  * Primary inputs are continuous-time 0-1 Markov processes: holding
//    times are exponential with rates chosen so the equilibrium
//    probability is P and the transition density is D (paper Sec. 5.1:
//    "time intervals between two consecutive transitions follow an
//    exponential distribution with average 1/Dk").
//  * Each gate is simulated at the transistor level: on every input
//    change, each internal stack node charges if its pull-up path
//    function H is true, discharges if its pull-down path function G is
//    true, and *retains its state* otherwise (charge storage; no charge
//    sharing, as the paper assumes).
//  * Outputs commit after a per-pin Elmore delay with inertial
//    filtering, so unequal path delays create glitches — the "useless
//    signal transitions" of paper Sec. 1 — which the stochastic model
//    cannot see. A zero-delay mode exists for model-validation tests.
//  * Every transition of a node with capacitance C costs Vdd^2 * C / 2,
//    matching the model's power convention.

#include <cstdint>
#include <map>
#include <vector>

#include "boolfn/signal.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"

namespace tr::sim {

struct SimOptions {
  double warmup_time = 2e-5;   ///< settle time before measuring [s]
  double measure_time = 1e-3;  ///< measurement window [s]
  std::uint64_t seed = 1;      ///< RNG seed for the input processes
  bool count_pi_energy = true; ///< include PI-net load switching energy
  bool use_gate_delays = true; ///< false = zero-delay (no glitches)
  std::uint64_t max_events = 200'000'000;  ///< runaway guard
};

/// Time-weighted statistics observed on one net during the window.
struct NetObservation {
  double prob = 0.0;     ///< fraction of time at '1'
  double density = 0.0;  ///< transitions per second
};

struct SimResult {
  double energy = 0.0;          ///< total switching energy in window [J]
  double power = 0.0;           ///< energy / measure_time [W]
  double output_node_energy = 0.0;
  double internal_node_energy = 0.0;
  double pi_energy = 0.0;
  std::vector<double> per_gate_energy;  ///< indexed by GateId [J]
  std::vector<NetObservation> nets;     ///< indexed by NetId
  std::uint64_t event_count = 0;
};

/// Runs the simulation. `pi_stats` must cover every primary input.
SimResult simulate(const netlist::Netlist& netlist,
                   const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
                   const celllib::Tech& tech, const SimOptions& options);

}  // namespace tr::sim
