#pragma once
// Event-driven switch-level simulation — the reproduction's stand-in for
// the SLS simulator the paper uses to validate the model (Table 3,
// column S; substitution documented in DESIGN.md Sec. 4.2).
//
// This header holds the options/result types and the single-replication
// entry point. The event loop itself lives in sim/sim_engine.hpp
// (`SimEngine`), which precomputes the per-netlist tables once and can
// run any number of independent replications; sim/monte_carlo.hpp runs
// replicated parallel simulations with confidence intervals on top of it
// (DESIGN.md Sec. 8).
//
// Semantics:
//  * Primary inputs are continuous-time 0-1 Markov processes: holding
//    times are exponential with rates chosen so the equilibrium
//    probability is P and the transition density is D (paper Sec. 5.1:
//    "time intervals between two consecutive transitions follow an
//    exponential distribution with average 1/Dk").
//  * Each gate is simulated at the transistor level: on every input
//    change, each internal stack node charges if its pull-up path
//    function H is true, discharges if its pull-down path function G is
//    true, and *retains its state* otherwise (charge storage; no charge
//    sharing, as the paper assumes).
//  * Outputs commit after a per-pin Elmore delay with inertial
//    filtering, so unequal path delays create glitches — the "useless
//    signal transitions" of paper Sec. 1 — which the stochastic model
//    cannot see. A zero-delay mode exists for model-validation tests.
//  * Every transition of a node with capacitance C costs Vdd^2 * C / 2,
//    matching the model's power convention.

#include <cstdint>
#include <map>
#include <vector>

#include "boolfn/signal.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"

namespace tr::sim {

struct SimOptions {
  double warmup_time = 2e-5;   ///< settle time before measuring [s]
  double measure_time = 1e-3;  ///< measurement window [s]
  std::uint64_t seed = 1;      ///< RNG seed for the input processes
  bool count_pi_energy = true; ///< include PI-net load switching energy
  bool use_gate_delays = true; ///< false = zero-delay (no glitches)
  std::uint64_t max_events = 200'000'000;  ///< runaway guard
};

/// Time-weighted statistics observed on one net during the window.
struct NetObservation {
  double prob = 0.0;     ///< fraction of time at '1'
  double density = 0.0;  ///< transitions per second
};

struct SimResult {
  double energy = 0.0;          ///< total switching energy in window [J]
  double power = 0.0;           ///< energy / measured_time [W]
  double output_node_energy = 0.0;
  double internal_node_energy = 0.0;
  double pi_energy = 0.0;
  std::vector<double> per_gate_energy;  ///< indexed by GateId [J]
  /// Output-node share of per_gate_energy (no internal nodes), the
  /// simulated side of the exact output-node model bridge (DESIGN.md
  /// Sec. 2, "output-node consistency property").
  std::vector<double> per_gate_output_energy;
  std::vector<NetObservation> nets;     ///< indexed by NetId
  std::uint64_t event_count = 0;
  /// True when the run hit `max_events` and stopped early. The result
  /// then covers only the partial window `measured_time`; consumers that
  /// need a complete window (the differential validation suite, the
  /// Monte-Carlo summaries) must check this flag and fail loudly.
  bool truncated = false;
  /// The window the statistics are normalised over [s]: `measure_time`
  /// for a complete run, the simulated prefix for a truncated one.
  double measured_time = 0.0;
};

/// Runs one replication. `pi_stats` must cover every primary input.
SimResult simulate(const netlist::Netlist& netlist,
                   const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
                   const celllib::Tech& tech, const SimOptions& options);

}  // namespace tr::sim
