#pragma once
// Indexed bucketed event scheduler for the switch-level simulation hot
// path (DESIGN.md Sec. 10.1).
//
// Replaces the std::priority_queue<Event> of the original engine while
// preserving its *exact* total order: events are popped in ascending
// (time, level, seq) order, where `level` is the delta-cycle
// levelization rank and `seq` a strictly increasing push counter, so the
// FIFO tie-break within a level is byte-identical to the reference loop
// and the rewritten engine stays a pure function of the seed.
//
// Layout: an event is a 16-byte ordering key — the raw double time plus
// one packed `level << 48 | seq` word, compared lexicographically — and
// a 4-byte payload (target index + event kind) that never participates
// in comparisons. Two lanes share that representation:
//
//  * Near lane: a calendar of `bucket_count` equal-width time buckets
//    covering one sliding window. Buckets are intrusive singly-linked
//    lists threaded through one contiguous slot pool (a freelist
//    recycles popped slots), so the lane owns exactly two flat arrays
//    regardless of how events distribute over buckets. Insertion links
//    into the bucket selected by `(time - window_start) * inv_width`
//    (O(1)); pop walks the cursor bucket for its minimum with the full
//    comparator. Bucket selection is monotone in `time` even under FP
//    rounding (same expression, fixed window origin), so (bucket,
//    in-bucket comparator) sorts identically to the global comparator.
//  * Far lane: events at or beyond the window end go to a binary
//    min-heap kept as parallel key/payload arrays (structure-of-arrays:
//    sift comparisons touch only the dense 16-byte keys). When the
//    window drains, it slides forward — jumping straight to the heap
//    top when everything is far future — and pulls the now-near events
//    into the calendar.
//
// `bucket_count == 0` selects pure heap mode (the "irregular delays"
// fallback, also used directly for degenerate input processes). All
// storage is retained across reset() and growth tracks only the global
// high-water event population (never per-bucket tails), so a scheduler
// owned by a ReplicationScratch reaches an allocation-free steady state
// after warmup.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace tr::sim {

class EventScheduler {
public:
  /// Number of low bits of the packed order word holding `seq`. 48 bits
  /// of sequence leaves 16 for the level; the engine validates both
  /// ranges before selecting this scheduler.
  static constexpr int seq_bits = 48;
  static constexpr std::uint64_t max_seq = (std::uint64_t{1} << seq_bits) - 1;
  static constexpr int max_level = 0xFFFF;

  static std::uint64_t pack_order(int level, std::uint64_t seq) noexcept {
    return (static_cast<std::uint64_t>(static_cast<unsigned>(level))
            << seq_bits) |
           seq;
  }

  /// One scheduled event: the 16-byte comparable key plus the payload.
  struct Event {
    double time = 0.0;
    std::uint64_t order = 0;  ///< level << seq_bits | seq
    std::uint32_t payload = 0;

    bool before(const Event& rhs) const noexcept {
      if (time != rhs.time) return time < rhs.time;
      return order < rhs.order;
    }
  };

  /// Prepares for one replication starting at time 0. `bucket_count`
  /// must be 0 (pure heap mode) or a positive count; `bucket_width`
  /// must be > 0 when buckets are used. Previously grown storage is
  /// kept, so steady-state reuse does not allocate.
  void reset(double bucket_width, int bucket_count);

  /// Grows the lanes to hold the given in-flight event counts without
  /// further allocation (capacity is retained across reset()).
  void reserve(std::size_t near_events, std::size_t far_events);

  void push(double time, std::uint64_t order, std::uint32_t payload);

  /// Locates the earliest event without removing it; false when empty.
  /// The cached location stays valid until the next push/pop/reset.
  bool peek(Event& out);

  /// Removes the event returned by the last successful peek.
  void pop();

  bool empty() const noexcept { return bucket_events_ + heap_key_.size() == 0; }
  std::size_t size() const noexcept { return bucket_events_ + heap_key_.size(); }

  /// Bytes of owned storage (capacity, not size): the scratch-arena
  /// high-water accounting of DESIGN.md Sec. 10.2.
  std::size_t allocated_bytes() const noexcept;

private:
  struct Key {
    double time;
    std::uint64_t order;
  };

  static constexpr std::int32_t nil = -1;

  std::size_t bucket_index(double time) const noexcept {
    std::size_t index =
        static_cast<std::size_t>((time - window_start_) * inv_width_);
    // FP guard only: monotone either way, see header comment.
    const std::size_t last = static_cast<std::size_t>(bucket_count_ - 1);
    return index > last ? last : index;
  }

  void bucket_insert(const Event& ev);
  void heap_push(double time, std::uint64_t order, std::uint32_t payload);
  void heap_pop();
  /// Slides (or jumps) the window so the heap top becomes near, then
  /// drains every now-near heap event into the calendar.
  void advance_window();

  // Near lane: per-bucket intrusive lists through one slot pool.
  std::vector<Event> slot_;        ///< slot pool
  std::vector<std::int32_t> link_; ///< forward link / freelist chain
  std::vector<std::int32_t> head_; ///< per bucket, nil when empty
  std::int32_t free_head_ = nil;
  int bucket_count_ = 0;
  int cursor_ = 0;
  double width_ = 0.0;
  double inv_width_ = 0.0;
  double window_start_ = 0.0;
  double window_end_ = 0.0;
  std::size_t bucket_events_ = 0;

  // Far lane (structure-of-arrays binary min-heap).
  std::vector<Key> heap_key_;
  std::vector<std::uint32_t> heap_payload_;

  // peek() -> pop() handoff: -2 nothing peeked, -1 heap top, else the
  // bucket holding the minimum, whose slot/predecessor allow unlinking.
  int peeked_bucket_ = -2;
  std::int32_t peeked_slot_ = nil;
  std::int32_t peeked_prev_ = nil;
};

}  // namespace tr::sim
