#include "sim/event_scheduler.hpp"

#include <algorithm>

namespace tr::sim {

void EventScheduler::reset(double bucket_width, int bucket_count) {
  TR_ASSERT(bucket_count >= 0);
  TR_ASSERT(bucket_count == 0 || bucket_width > 0.0);
  head_.assign(static_cast<std::size_t>(bucket_count), nil);
  bucket_count_ = bucket_count;
  slot_.clear();
  link_.clear();
  free_head_ = nil;
  bucket_events_ = 0;
  cursor_ = 0;
  width_ = bucket_width;
  inv_width_ = bucket_count > 0 ? 1.0 / bucket_width : 0.0;
  window_start_ = 0.0;
  window_end_ = bucket_count > 0
                    ? bucket_width * static_cast<double>(bucket_count)
                    : 0.0;
  heap_key_.clear();
  heap_payload_.clear();
  peeked_bucket_ = -2;
}

void EventScheduler::reserve(std::size_t near_events,
                             std::size_t far_events) {
  slot_.reserve(near_events);
  link_.reserve(near_events);
  heap_key_.reserve(far_events);
  heap_payload_.reserve(far_events);
}





std::size_t EventScheduler::allocated_bytes() const noexcept {
  return slot_.capacity() * sizeof(Event) +
         link_.capacity() * sizeof(std::int32_t) +
         head_.capacity() * sizeof(std::int32_t) +
         heap_key_.capacity() * sizeof(Key) +
         heap_payload_.capacity() * sizeof(std::uint32_t);
}

void EventScheduler::heap_push(double time, std::uint64_t order,
                               std::uint32_t payload) {
  heap_key_.push_back(Key{time, order});
  heap_payload_.push_back(payload);
  std::size_t child = heap_key_.size() - 1;
  while (child > 0) {
    const std::size_t parent = (child - 1) / 2;
    const bool less =
        heap_key_[child].time != heap_key_[parent].time
            ? heap_key_[child].time < heap_key_[parent].time
            : heap_key_[child].order < heap_key_[parent].order;
    if (!less) break;
    std::swap(heap_key_[child], heap_key_[parent]);
    std::swap(heap_payload_[child], heap_payload_[parent]);
    child = parent;
  }
}

void EventScheduler::heap_pop() {
  const std::size_t n = heap_key_.size() - 1;
  heap_key_[0] = heap_key_[n];
  heap_payload_[0] = heap_payload_[n];
  heap_key_.pop_back();
  heap_payload_.pop_back();
  std::size_t parent = 0;
  for (;;) {
    std::size_t best = parent;
    for (std::size_t child = 2 * parent + 1;
         child < n && child <= 2 * parent + 2; ++child) {
      const bool less = heap_key_[child].time != heap_key_[best].time
                            ? heap_key_[child].time < heap_key_[best].time
                            : heap_key_[child].order < heap_key_[best].order;
      if (less) best = child;
    }
    if (best == parent) break;
    std::swap(heap_key_[parent], heap_key_[best]);
    std::swap(heap_payload_[parent], heap_payload_[best]);
    parent = best;
  }
}

void EventScheduler::advance_window() {
  // Called with every bucket empty: all pending events live in the heap
  // and every one of them is at or beyond window_end_ (pushes inside the
  // window go to buckets, and earlier slides drained everything nearer).
  const double top = heap_key_[0].time;
  const double span = width_ * static_cast<double>(bucket_count_);
  double next_start = window_end_;
  if (top >= next_start + span) next_start = top;  // skip the empty gap
  window_start_ = next_start;
  window_end_ = next_start + span;
  cursor_ = 0;
  bool drained = false;
  while (!heap_key_.empty() && heap_key_[0].time < window_end_) {
    bucket_insert(
        Event{heap_key_[0].time, heap_key_[0].order, heap_payload_[0]});
    heap_pop();
    drained = true;
  }
  if (!drained) {
    // `top` is so large that adding the span was absorbed by FP rounding
    // (window_end_ == window_start_). Bucket the heap minimum directly:
    // ordering is unaffected (it is the global minimum) and peek
    // terminates; equal-time companions follow one per advance.
    bucket_insert(
        Event{heap_key_[0].time, heap_key_[0].order, heap_payload_[0]});
    heap_pop();
  }
}

void EventScheduler::bucket_insert(const Event& ev) {
  std::int32_t slot;
  if (free_head_ != nil) {
    slot = free_head_;
    free_head_ = link_[static_cast<std::size_t>(slot)];
    slot_[static_cast<std::size_t>(slot)] = ev;
  } else {
    slot = static_cast<std::int32_t>(slot_.size());
    slot_.push_back(ev);
    link_.push_back(nil);
  }
  std::int32_t& head = head_[bucket_index(ev.time)];
  link_[static_cast<std::size_t>(slot)] = head;
  head = slot;
  ++bucket_events_;
}

void EventScheduler::push(double time, std::uint64_t order,
                                 std::uint32_t payload) {
  peeked_bucket_ = -2;
  if (bucket_count_ == 0 || time >= window_end_) {
    heap_push(time, order, payload);
    return;
  }
  // The engine never schedules into the past, so `time` lies at or after
  // the cursor bucket and the in-order pop invariant holds.
  bucket_insert(Event{time, order, payload});
}

bool EventScheduler::peek(Event& out) {
  if (bucket_count_ == 0) {
    if (heap_key_.empty()) return false;
    out = Event{heap_key_[0].time, heap_key_[0].order, heap_payload_[0]};
    peeked_bucket_ = -1;
    return true;
  }
  for (;;) {
    while (cursor_ < bucket_count_) {
      const std::int32_t head = head_[static_cast<std::size_t>(cursor_)];
      if (head != nil) {
        std::int32_t best = head;
        std::int32_t best_prev = nil;
        std::int32_t prev = head;
        for (std::int32_t walk = link_[static_cast<std::size_t>(head)];
             walk != nil; walk = link_[static_cast<std::size_t>(walk)]) {
          if (slot_[static_cast<std::size_t>(walk)].before(
                  slot_[static_cast<std::size_t>(best)])) {
            best = walk;
            best_prev = prev;
          }
          prev = walk;
        }
        out = slot_[static_cast<std::size_t>(best)];
        peeked_bucket_ = cursor_;
        peeked_slot_ = best;
        peeked_prev_ = best_prev;
        return true;
      }
      ++cursor_;
    }
    if (heap_key_.empty()) return false;
    advance_window();
  }
}

void EventScheduler::pop() {
  TR_ASSERT(peeked_bucket_ != -2);
  if (peeked_bucket_ == -1) {
    heap_pop();
  } else {
    const std::size_t slot = static_cast<std::size_t>(peeked_slot_);
    if (peeked_prev_ == nil) {
      head_[static_cast<std::size_t>(peeked_bucket_)] = link_[slot];
    } else {
      link_[static_cast<std::size_t>(peeked_prev_)] = link_[slot];
    }
    link_[slot] = free_head_;
    free_head_ = peeked_slot_;
    --bucket_events_;
  }
  peeked_bucket_ = -2;
}


}  // namespace tr::sim
