#include "sim/switch_sim.hpp"

#include "sim/sim_engine.hpp"
#include "util/error.hpp"

namespace tr::sim {

PiStatsTable::PiStatsTable(int net_count) {
  TR_ASSERT(net_count >= 0);
  stats_.resize(static_cast<std::size_t>(net_count));
  present_.assign(static_cast<std::size_t>(net_count), 0);
}

PiStatsTable::PiStatsTable(
    int net_count, const std::map<netlist::NetId, boolfn::SignalStats>& stats)
    : PiStatsTable(net_count) {
  for (const auto& [net, s] : stats) set(net, s);
}

void PiStatsTable::set(netlist::NetId net, const boolfn::SignalStats& stats) {
  require(net >= 0 && net < net_count(),
          "PiStatsTable: net id out of range");
  stats_[static_cast<std::size_t>(net)] = stats;
  present_[static_cast<std::size_t>(net)] = 1;
}

const boolfn::SignalStats* PiStatsTable::find(
    netlist::NetId net) const noexcept {
  if (net < 0 || net >= net_count() ||
      present_[static_cast<std::size_t>(net)] == 0) {
    return nullptr;
  }
  return &stats_[static_cast<std::size_t>(net)];
}

SimResult simulate(const netlist::Netlist& netlist,
                   const PiStatsTable& pi_stats, const celllib::Tech& tech,
                   const SimOptions& options) {
  return SimEngine(netlist, pi_stats, tech, options).run();
}

SimResult simulate(const netlist::Netlist& netlist,
                   const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
                   const celllib::Tech& tech, const SimOptions& options) {
  return simulate(netlist, PiStatsTable(netlist.net_count(), pi_stats), tech,
                  options);
}

}  // namespace tr::sim
