#include "sim/switch_sim.hpp"

#include <algorithm>
#include <queue>

#include "celllib/cell.hpp"
#include "delay/elmore.hpp"
#include "gategraph/gate_graph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tr::sim {

using boolfn::SignalStats;
using boolfn::TruthTable;
using gategraph::GateGraph;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

namespace {

/// Per-gate precomputed simulation tables and mutable state.
struct GateRuntime {
  TruthTable output_fn{0};
  std::vector<TruthTable> h_fns;  ///< per internal node
  std::vector<TruthTable> g_fns;
  std::vector<double> internal_caps;  ///< per internal node [F]
  double output_cap = 0.0;            ///< diffusion + external load [F]
  std::vector<double> pin_delay;

  int level = 0;  ///< topological level of the output net

  std::uint64_t input_minterm = 0;
  std::vector<bool> internal_state;
  /// Inertial-delay bookkeeping: a scheduled commit is valid only if its
  /// version matches.
  std::uint64_t version = 0;
  bool has_pending = false;
  bool pending_value = false;
};

/// Continuous-time Markov input process.
struct PiProcess {
  double rate_up = 0.0;    ///< 0 -> 1 rate
  double rate_down = 0.0;  ///< 1 -> 0 rate
  double load_cap = 0.0;   ///< wire + fanout pin capacitance [F]
};

struct Event {
  double time = 0.0;
  /// Topological level of the driven net (0 for primary inputs).
  /// Events at identical times process in level order (delta-cycle
  /// levelization), which makes the zero-delay mode glitch-free: a gate
  /// re-evaluates only after all same-instant fan-in updates have
  /// settled, so only functionally required transitions commit.
  int level = 0;
  std::uint64_t seq = 0;  ///< FIFO tie-break within a level
  enum class Kind : std::uint8_t { pi_toggle, gate_commit } kind = Kind::pi_toggle;
  int index = 0;  ///< NetId for pi_toggle, GateId for gate_commit
  bool value = false;
  std::uint64_t version = 0;  ///< gate_commit validity check

  bool operator>(const Event& rhs) const {
    if (time != rhs.time) return time > rhs.time;
    if (level != rhs.level) return level > rhs.level;
    return seq > rhs.seq;
  }
};

class Simulator {
public:
  Simulator(const Netlist& netlist,
            const std::map<NetId, SignalStats>& pi_stats,
            const celllib::Tech& tech, const SimOptions& options)
      : netlist_(netlist), tech_(tech), options_(options), rng_(options.seed) {
    build_gates();
    build_pis(pi_stats);
  }

  SimResult run() {
    initialize_state();
    const double t_end = options_.warmup_time + options_.measure_time;

    while (!queue_.empty()) {
      const Event ev = queue_.top();
      if (ev.time > t_end) break;
      queue_.pop();
      ++result_.event_count;
      require(result_.event_count <= options_.max_events,
              "switch_sim: event budget exceeded (oscillation or runaway "
              "configuration?)");
      if (ev.kind == Event::Kind::pi_toggle) {
        handle_pi_toggle(ev);
      } else {
        handle_gate_commit(ev);
      }
    }

    finalize(t_end);
    return std::move(result_);
  }

private:
  void build_gates() {
    // Net levelization for the delta-cycle event ordering.
    std::vector<int> net_level(static_cast<std::size_t>(netlist_.net_count()),
                               0);
    for (GateId g : netlist_.topological_order()) {
      const netlist::GateInst& inst = netlist_.gate(g);
      int level = 0;
      for (NetId in : inst.inputs) {
        level = std::max(level, net_level[static_cast<std::size_t>(in)]);
      }
      net_level[static_cast<std::size_t>(inst.output)] = level + 1;
    }

    gates_.reserve(static_cast<std::size_t>(netlist_.gate_count()));
    for (GateId g = 0; g < netlist_.gate_count(); ++g) {
      const netlist::GateInst& inst = netlist_.gate(g);
      const GateGraph graph(inst.config);
      const std::vector<double> caps = celllib::node_capacitances(
          graph, tech_, netlist_.external_load(g, tech_));

      GateRuntime rt;
      rt.output_fn = inst.config.output_function();
      for (int k = 0; k < graph.internal_node_count(); ++k) {
        const int node = GateGraph::first_internal_node + k;
        rt.h_fns.push_back(graph.h_function(node));
        rt.g_fns.push_back(graph.g_function(node));
        rt.internal_caps.push_back(caps[static_cast<std::size_t>(node)]);
      }
      rt.output_cap = caps[GateGraph::output_node];
      if (options_.use_gate_delays) {
        rt.pin_delay = delay::gate_delays(graph, caps, tech_).pin_delay;
      } else {
        rt.pin_delay.assign(inst.inputs.size(), 0.0);
      }
      rt.internal_state.assign(rt.h_fns.size(), false);
      rt.level = net_level[static_cast<std::size_t>(inst.output)];
      gates_.push_back(std::move(rt));
    }
  }

  void build_pis(const std::map<NetId, SignalStats>& pi_stats) {
    pi_.resize(static_cast<std::size_t>(netlist_.net_count()));
    for (NetId id : netlist_.primary_inputs()) {
      const auto it = pi_stats.find(id);
      require(it != pi_stats.end(),
              "switch_sim: missing statistics for primary input '" +
                  netlist_.net(id).name + "'");
      const SignalStats& s = it->second;
      require(s.prob >= 0.0 && s.prob <= 1.0 && s.density >= 0.0,
              "switch_sim: invalid PI statistics");
      PiProcess p;
      // Two-state CTMC: P(1) = r_up / (r_up + r_down) and the transition
      // density (both edges) is 2 r_up r_down / (r_up + r_down) = D,
      // giving r_up = D / (2 (1-P)), r_down = D / (2 P).
      if (s.density > 0.0 && s.prob > 0.0 && s.prob < 1.0) {
        p.rate_up = s.density / (2.0 * (1.0 - s.prob));
        p.rate_down = s.density / (2.0 * s.prob);
      }
      p.load_cap = tech_.c_wire;
      for (const auto& [fan_gate, pin] : netlist_.net(id).fanouts) {
        p.load_cap += netlist_.library()
                          .cell(netlist_.gate(fan_gate).cell)
                          .pin_capacitance(tech_, pin);
      }
      pi_[static_cast<std::size_t>(id)] = p;
      initial_pi_value_[id] = rng_.bernoulli(s.prob);
    }
  }

  void initialize_state() {
    const int n = netlist_.net_count();
    net_value_.assign(static_cast<std::size_t>(n), false);
    last_change_.assign(static_cast<std::size_t>(n), 0.0);
    ones_time_.assign(static_cast<std::size_t>(n), 0.0);
    transitions_.assign(static_cast<std::size_t>(n), 0);
    result_.per_gate_energy.assign(
        static_cast<std::size_t>(netlist_.gate_count()), 0.0);

    // Steady-state logic values from the initial PI assignment.
    for (const auto& [net, value] : initial_pi_value_) {
      net_value_[static_cast<std::size_t>(net)] = value;
    }
    for (GateId g : netlist_.topological_order()) {
      const netlist::GateInst& inst = netlist_.gate(g);
      GateRuntime& rt = gates_[static_cast<std::size_t>(g)];
      std::uint64_t minterm = 0;
      for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
        if (net_value_[static_cast<std::size_t>(inst.inputs[pin])]) {
          minterm |= 1ULL << pin;
        }
      }
      rt.input_minterm = minterm;
      net_value_[static_cast<std::size_t>(inst.output)] =
          rt.output_fn.value_at(minterm);
      for (std::size_t k = 0; k < rt.h_fns.size(); ++k) {
        // Undriven nodes start discharged; any driven node takes its
        // rail value.
        rt.internal_state[k] = rt.h_fns[k].value_at(minterm);
      }
    }

    // Seed PI toggle events.
    for (NetId id : netlist_.primary_inputs()) {
      schedule_pi_toggle(id, 0.0);
    }
  }

  void schedule_pi_toggle(NetId id, double now) {
    const PiProcess& p = pi_[static_cast<std::size_t>(id)];
    const bool current = net_value_[static_cast<std::size_t>(id)];
    const double rate = current ? p.rate_down : p.rate_up;
    if (rate <= 0.0) return;  // frozen input
    Event ev;
    ev.time = now + rng_.exponential(rate);
    ev.level = 0;
    ev.seq = next_seq_++;
    ev.kind = Event::Kind::pi_toggle;
    ev.index = id;
    ev.value = !current;
    queue_.push(ev);
  }

  void handle_pi_toggle(const Event& ev) {
    const NetId net = ev.index;
    TR_ASSERT(net_value_[static_cast<std::size_t>(net)] != ev.value);
    record_net_change(net, ev.time);
    net_value_[static_cast<std::size_t>(net)] = ev.value;
    if (ev.time >= options_.warmup_time && options_.count_pi_energy) {
      const double e = tech_.energy_per_transition(
          pi_[static_cast<std::size_t>(net)].load_cap);
      result_.pi_energy += e;
      result_.energy += e;
    }
    propagate_net_change(net, ev.time);
    schedule_pi_toggle(net, ev.time);
  }

  void handle_gate_commit(const Event& ev) {
    GateRuntime& rt = gates_[static_cast<std::size_t>(ev.index)];
    if (!rt.has_pending || ev.version != rt.version) return;  // cancelled
    rt.has_pending = false;
    const NetId net = netlist_.gate(ev.index).output;
    if (net_value_[static_cast<std::size_t>(net)] == ev.value) return;
    record_net_change(net, ev.time);
    net_value_[static_cast<std::size_t>(net)] = ev.value;
    if (ev.time >= options_.warmup_time) {
      const double e = tech_.energy_per_transition(rt.output_cap);
      result_.output_node_energy += e;
      result_.energy += e;
      result_.per_gate_energy[static_cast<std::size_t>(ev.index)] += e;
    }
    propagate_net_change(net, ev.time);
  }

  void propagate_net_change(NetId net, double now) {
    for (const auto& [gate, pin] : netlist_.net(net).fanouts) {
      GateRuntime& rt = gates_[static_cast<std::size_t>(gate)];
      rt.input_minterm ^= 1ULL << pin;
      update_internal_nodes(gate, rt, now);
      evaluate_output(gate, rt, pin, now);
    }
  }

  void update_internal_nodes(GateId gate, GateRuntime& rt, double now) {
    for (std::size_t k = 0; k < rt.h_fns.size(); ++k) {
      const bool h = rt.h_fns[k].value_at(rt.input_minterm);
      const bool g = rt.g_fns[k].value_at(rt.input_minterm);
      TR_ASSERT(!(h && g));  // no rail-to-rail short
      const bool next = h ? true : (g ? false : rt.internal_state[k]);
      if (next != rt.internal_state[k]) {
        rt.internal_state[k] = next;
        if (now >= options_.warmup_time) {
          const double e = tech_.energy_per_transition(rt.internal_caps[k]);
          result_.internal_node_energy += e;
          result_.energy += e;
          result_.per_gate_energy[static_cast<std::size_t>(gate)] += e;
        }
      }
    }
  }

  void evaluate_output(GateId gate, GateRuntime& rt, int pin, double now) {
    const bool steady = rt.output_fn.value_at(rt.input_minterm);
    const NetId out = netlist_.gate(gate).output;
    const bool target = rt.has_pending
                            ? rt.pending_value
                            : net_value_[static_cast<std::size_t>(out)];
    if (steady == target) {
      // Inertial filtering: a pending pulse shorter than the gate delay is
      // swallowed by cancelling the scheduled commit.
      if (rt.has_pending && rt.pending_value != steady) {
        rt.has_pending = false;
        ++rt.version;
      }
      return;
    }
    ++rt.version;
    rt.has_pending = true;
    rt.pending_value = steady;
    Event ev;
    ev.time = now + rt.pin_delay[static_cast<std::size_t>(pin)];
    ev.level = rt.level;
    ev.seq = next_seq_++;
    ev.kind = Event::Kind::gate_commit;
    ev.index = gate;
    ev.value = steady;
    ev.version = rt.version;
    queue_.push(ev);
  }

  void record_net_change(NetId net, double now) {
    const double start = options_.warmup_time;
    if (now > start) {
      const double from =
          last_change_[static_cast<std::size_t>(net)] > start
              ? last_change_[static_cast<std::size_t>(net)]
              : start;
      if (net_value_[static_cast<std::size_t>(net)]) {
        ones_time_[static_cast<std::size_t>(net)] += now - from;
      }
      ++transitions_[static_cast<std::size_t>(net)];
    }
    last_change_[static_cast<std::size_t>(net)] = now;
  }

  void finalize(double t_end) {
    result_.nets.resize(static_cast<std::size_t>(netlist_.net_count()));
    const double start = options_.warmup_time;
    const double window = options_.measure_time;
    for (NetId id = 0; id < netlist_.net_count(); ++id) {
      const std::size_t v = static_cast<std::size_t>(id);
      double ones = ones_time_[v];
      if (net_value_[v]) {
        const double from = last_change_[v] > start ? last_change_[v] : start;
        ones += t_end - from;
      }
      result_.nets[v].prob = window > 0.0 ? ones / window : 0.0;
      result_.nets[v].density =
          window > 0.0 ? static_cast<double>(transitions_[v]) / window : 0.0;
    }
    result_.power = window > 0.0 ? result_.energy / window : 0.0;
  }

  const Netlist& netlist_;
  const celllib::Tech& tech_;
  SimOptions options_;
  Rng rng_;

  std::vector<GateRuntime> gates_;
  std::vector<PiProcess> pi_;
  std::map<NetId, bool> initial_pi_value_;

  std::vector<bool> net_value_;
  std::vector<double> last_change_;
  std::vector<double> ones_time_;
  std::vector<std::uint64_t> transitions_;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t next_seq_ = 0;
  SimResult result_;
};

}  // namespace

SimResult simulate(const Netlist& netlist,
                   const std::map<NetId, SignalStats>& pi_stats,
                   const celllib::Tech& tech, const SimOptions& options) {
  netlist.validate();
  require(options.measure_time > 0.0, "switch_sim: measure_time must be > 0");
  return Simulator(netlist, pi_stats, tech, options).run();
}

}  // namespace tr::sim
