#include "sim/switch_sim.hpp"

#include "sim/sim_engine.hpp"

namespace tr::sim {

SimResult simulate(const netlist::Netlist& netlist,
                   const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
                   const celllib::Tech& tech, const SimOptions& options) {
  return SimEngine(netlist, pi_stats, tech, options).run();
}

}  // namespace tr::sim
