#include "sim/monte_carlo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>

#include "sim/bitsim.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tr::sim {

namespace {

/// Welford accumulators mirroring the SimSummary layout. Accumulation is
/// strictly sequential in replicate-index order (the parallel part is
/// only the replications themselves), which is what makes the summary
/// independent of the thread count.
struct Accumulators {
  RunningStats energy, power, output_node_energy, internal_node_energy,
      pi_energy, gate_energy;
  std::vector<RunningStats> per_gate_energy;
  std::vector<RunningStats> per_gate_output_energy;
  std::vector<RunningStats> net_prob, net_density;
  std::size_t truncated = 0;
  std::uint64_t total_events = 0;
  std::vector<double> replicate_energy;
  std::size_t scratch_high_water = 0;

  void add(const SimResult& r) {
    energy.add(r.energy);
    power.add(r.power);
    output_node_energy.add(r.output_node_energy);
    internal_node_energy.add(r.internal_node_energy);
    pi_energy.add(r.pi_energy);
    gate_energy.add(r.energy - r.pi_energy);
    if (per_gate_energy.empty()) {
      per_gate_energy.resize(r.per_gate_energy.size());
      per_gate_output_energy.resize(r.per_gate_energy.size());
      net_prob.resize(r.nets.size());
      net_density.resize(r.nets.size());
    }
    for (std::size_t g = 0; g < r.per_gate_energy.size(); ++g) {
      per_gate_energy[g].add(r.per_gate_energy[g]);
      per_gate_output_energy[g].add(r.per_gate_output_energy[g]);
    }
    for (std::size_t n = 0; n < r.nets.size(); ++n) {
      net_prob[n].add(r.nets[n].prob);
      net_density[n].add(r.nets[n].density);
    }
    if (r.truncated) ++truncated;
    total_events += r.event_count;
    replicate_energy.push_back(r.energy);
    scratch_high_water = std::max(scratch_high_water, r.scratch_bytes);
  }

  SimSummary summary(double measure_time) const {
    SimSummary s;
    s.energy = energy.estimate();
    s.power = power.estimate();
    s.output_node_energy = output_node_energy.estimate();
    s.internal_node_energy = internal_node_energy.estimate();
    s.pi_energy = pi_energy.estimate();
    s.gate_energy = gate_energy.estimate();
    s.per_gate_energy.reserve(per_gate_energy.size());
    for (const RunningStats& g : per_gate_energy) {
      s.per_gate_energy.push_back(g.estimate());
    }
    s.per_gate_output_energy.reserve(per_gate_output_energy.size());
    for (const RunningStats& g : per_gate_output_energy) {
      s.per_gate_output_energy.push_back(g.estimate());
    }
    s.nets.reserve(net_prob.size());
    for (std::size_t n = 0; n < net_prob.size(); ++n) {
      s.nets.push_back({net_prob[n].estimate(), net_density[n].estimate()});
    }
    s.replications = energy.count();
    s.truncated_replications = truncated;
    s.total_events = total_events;
    s.measure_time = measure_time;
    s.replicate_energy = replicate_energy;
    s.scratch_high_water_bytes = scratch_high_water;
    return s;
  }
};

/// Runs replicates [first, first + count) in parallel and folds them into
/// `acc` in index order. `results` is a recycled slot pool: slots keep
/// their vector capacities batch over batch, and each worker thread
/// reuses one thread-local ReplicationScratch across every replication
/// it runs, so steady-state replication does not allocate
/// (DESIGN.md Sec. 10.2).
void run_batch(const SimEngine& engine, const BitSim* bitsim,
               util::ThreadPool& pool, std::uint64_t master_seed,
               std::size_t first, std::size_t count, Accumulators& acc,
               std::vector<SimResult>& results) {
  if (results.size() < count) results.resize(count);
  // Per-replicate poll on top of the engines' in-loop polls, so a
  // cancelled session stops between replications without finishing the
  // batch. Replications are discarded wholesale on unwind — the fold
  // below never runs — so no partial summary can be observed.
  const util::CancellationToken& cancel = engine.options().cancel;
  const bool cancellable = cancel.valid();
  std::size_t tail_first = 0;
  if (bitsim) {
    // Full 64-replicate groups run packed, one BitSim run per group;
    // lane k of group w is replicate first + w*64 + k, seeded with
    // exactly the stream the scalar route would use, so the fold below
    // sees bit-identical results either way.
    const std::size_t lanes = static_cast<std::size_t>(BitSim::lane_count);
    const std::size_t groups = count / lanes;
    tail_first = groups * lanes;
    pool.parallel_for(groups, [&](std::size_t w) {
      if (cancellable) cancel.check("monte_carlo");
      thread_local BitSimScratch packed;
      std::uint64_t seeds[BitSim::lane_count];
      Rng::derive_streams(master_seed, first + w * lanes, seeds, lanes);
      bitsim->run(seeds, packed);
      for (int k = 0; k < BitSim::lane_count; ++k) {
        bitsim->extract_lane(packed, k,
                             results[w * lanes + static_cast<std::size_t>(k)]);
      }
    });
  }
  pool.parallel_for(count - tail_first, [&](std::size_t i) {
    if (cancellable) cancel.check("monte_carlo");
    thread_local ReplicationScratch scratch;
    engine.run(Rng::derive_stream(master_seed, first + tail_first + i),
               scratch, results[tail_first + i]);
  });
  for (std::size_t i = 0; i < count; ++i) acc.add(results[i]);
}

}  // namespace

namespace {

SimSummary monte_carlo_impl(const SimEngine& engine,
                            const MonteCarloOptions& options,
                            util::ThreadPool* pool) {
  require(options.replications >= 1,
          "monte_carlo: replications must be >= 1");
  require(options.target_rel_ci >= 0.0,
          "monte_carlo: target_rel_ci must be >= 0");
  const bool adaptive = options.target_rel_ci > 0.0;
  if (adaptive) {
    require(options.batch_size >= 1, "monte_carlo: batch_size must be >= 1");
    require(options.max_replications >= options.replications,
            "monte_carlo: max_replications must be >= replications");
  }

  // Packing decision: deterministic in the options alone (never in the
  // thread count or batch outcomes), so packed and scalar sessions stay
  // reproducible. `automatic` packs only when some batch can actually
  // form a full 64-lane group.
  std::optional<BitSim> bitsim;
  switch (options.packing) {
    case PackingMode::scalar:
      break;
    case PackingMode::packed:
      require(BitSim::supported(engine),
              "monte_carlo: packed replication requires the zero- or "
              "unit-delay model with the simulation fast path available");
      bitsim.emplace(engine);
      break;
    case PackingMode::automatic:
      if (BitSim::supported(engine) &&
          (options.replications >= BitSim::lane_count ||
           (adaptive && options.batch_size >= BitSim::lane_count))) {
        bitsim.emplace(engine);
      }
      break;
  }

  const auto wall_start = std::chrono::steady_clock::now();
  util::ThreadPool local_pool(pool ? 1 : options.threads);
  util::ThreadPool& workers = pool ? *pool : local_pool;
  const std::uint64_t master_seed = options.sim.seed;

  Accumulators acc;
  std::vector<SimResult> results;
  std::size_t next = 0;
  run_batch(engine, bitsim ? &*bitsim : nullptr, workers, master_seed, next,
            static_cast<std::size_t>(options.replications), acc, results);
  next += static_cast<std::size_t>(options.replications);

  bool target_reached = false;
  if (adaptive) {
    const auto met = [&] {
      const Estimate e = acc.energy.estimate();
      return e.count >= 2 &&
             e.ci95 <= options.target_rel_ci * std::abs(e.mean);
    };
    target_reached = met();
    const std::size_t cap =
        static_cast<std::size_t>(options.max_replications);
    while (!target_reached && next < cap) {
      const std::size_t batch =
          std::min(static_cast<std::size_t>(options.batch_size), cap - next);
      run_batch(engine, bitsim ? &*bitsim : nullptr, workers, master_seed,
                next, batch, acc, results);
      next += batch;
      target_reached = met();
    }
  }

  SimSummary summary = acc.summary(engine.options().measure_time);
  summary.target_reached = target_reached;
  summary.elapsed_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - wall_start)
                                .count();
  if (summary.elapsed_seconds > 0.0) {
    summary.events_per_sec =
        static_cast<double>(summary.total_events) / summary.elapsed_seconds;
    summary.replications_per_sec =
        static_cast<double>(summary.replications) / summary.elapsed_seconds;
  }
  return summary;
}

}  // namespace

SimSummary monte_carlo(const SimEngine& engine,
                       const MonteCarloOptions& options,
                       util::ThreadPool* pool) {
  return with_error_site("monte_carlo", [&] {
    return monte_carlo_impl(engine, options, pool);
  });
}

SimSummary monte_carlo(const netlist::Netlist& netlist,
                       const PiStatsTable& pi_stats,
                       const celllib::Tech& tech,
                       const MonteCarloOptions& options) {
  const SimEngine engine(netlist, pi_stats, tech, options.sim);
  return monte_carlo(engine, options);
}

SimSummary monte_carlo(
    const netlist::Netlist& netlist,
    const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
    const celllib::Tech& tech, const MonteCarloOptions& options) {
  return monte_carlo(netlist,
                     PiStatsTable(netlist.net_count(), pi_stats), tech,
                     options);
}

}  // namespace tr::sim
