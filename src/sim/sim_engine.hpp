#pragma once
// Reusable switch-level simulation engine (DESIGN.md Sec. 8.1).
//
// Construction does all the per-netlist work once — net levelization,
// per-gate H/G path tables, node capacitances, Elmore pin delays, the
// CTMC rates of every primary-input process. After that the engine is
// immutable; `run(seed)` executes one independent replication whose
// mutable state (event queue, net values, accumulators, RNG) is owned by
// the call, so any number of replications may run concurrently on a
// thread pool and the result of a replication is a pure function of its
// seed. Monte-Carlo replication with confidence intervals is layered on
// top in sim/monte_carlo.hpp.

#include <cstdint>
#include <map>
#include <vector>

#include "boolfn/signal.hpp"
#include "boolfn/truth_table.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"
#include "sim/switch_sim.hpp"

namespace tr::sim {

class SimEngine {
public:
  /// Validates the netlist and options and precomputes all simulation
  /// tables. `pi_stats` must cover every primary input; the netlist,
  /// tech and library must outlive the engine.
  SimEngine(const netlist::Netlist& netlist,
            const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
            const celllib::Tech& tech, const SimOptions& options);

  /// One independent replication driven by `seed`. Thread-safe and
  /// deterministic: the engine is immutable after construction and every
  /// run owns its mutable state, so the result depends only on `seed`
  /// (never on which thread runs it or on concurrent runs).
  SimResult run(std::uint64_t seed) const;

  /// Replication with the options' own seed (the classic simulate()).
  SimResult run() const { return run(options_.seed); }

  const SimOptions& options() const noexcept { return options_; }
  const netlist::Netlist& netlist() const noexcept { return netlist_; }

private:
  /// Immutable per-gate simulation tables.
  struct GateTables {
    boolfn::TruthTable output_fn{0};
    std::vector<boolfn::TruthTable> h_fns;  ///< per internal node
    std::vector<boolfn::TruthTable> g_fns;
    std::vector<double> internal_caps;  ///< per internal node [F]
    double output_cap = 0.0;            ///< diffusion + external load [F]
    std::vector<double> pin_delay;
    int level = 0;  ///< topological level of the output net
  };

  /// Immutable continuous-time Markov input process parameters.
  struct PiProcess {
    double rate_up = 0.0;    ///< 0 -> 1 rate
    double rate_down = 0.0;  ///< 1 -> 0 rate
    double load_cap = 0.0;   ///< wire + fanout pin capacitance [F]
    double prob = 0.0;       ///< equilibrium P(1), initial-state draw
  };

  struct Replication;  // the per-run mutable state (sim_engine.cpp)

  void build_gates();
  void build_pis(const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats);

  const netlist::Netlist& netlist_;
  const celllib::Tech& tech_;
  SimOptions options_;

  std::vector<GateTables> gates_;           ///< indexed by GateId
  std::vector<PiProcess> pi_;               ///< indexed by NetId
  std::vector<netlist::NetId> pi_order_;    ///< PIs in RNG draw order
  std::vector<netlist::GateId> topo_order_;
};

}  // namespace tr::sim
