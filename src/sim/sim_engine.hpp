#pragma once
// Reusable switch-level simulation engine (DESIGN.md Sec. 8.1; hot-path
// architecture Sec. 10).
//
// Construction does all the per-netlist work once — net levelization,
// per-gate H/G path tables, node capacitances, Elmore pin delays, the
// CTMC rates of every primary-input process — and additionally flattens
// everything the event loop touches into structure-of-arrays tables:
// single-word truth tables, CSR fanout arcs with per-arc delays,
// per-node transition energies. After that the engine is immutable;
// `run(seed)` executes one independent replication whose mutable state
// lives in a ReplicationScratch (byte-valued net state, one contiguous
// internal-node arena, the indexed event scheduler), so any number of
// replications may run concurrently on a thread pool, the result of a
// replication is a pure function of its seed, and a scratch reused
// across replications makes steady-state replication allocation-free.
//
// The pre-rewrite event loop (std::priority_queue of padded events,
// std::vector<bool> state, per-gate node vectors) is retained verbatim
// as `run_reference`: it is the differential oracle the rewritten hot
// path is pinned bit-identical against (tests/test_sim_differential.cpp)
// and the baseline the BENCH_sim speedup ratio is measured from.
// Monte-Carlo replication with confidence intervals is layered on top in
// sim/monte_carlo.hpp.

#include <cstdint>
#include <map>
#include <vector>

#include "boolfn/signal.hpp"
#include "boolfn/truth_table.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"
#include "sim/event_scheduler.hpp"
#include "sim/switch_sim.hpp"

namespace tr::sim {

/// Reusable per-replication state: flat byte/word arenas for every piece
/// of mutable simulation state plus the event scheduler. A scratch is
/// owned by exactly one thread at a time (monte_carlo hands each worker
/// its own and reuses it across that worker's replications); reuse keeps
/// every arena's capacity, so replications after warmup allocate nothing
/// (DESIGN.md Sec. 10.2). Default-constructed scratches adapt to any
/// engine. Members are an implementation detail of SimEngine — public
/// only because the hot-path runner lives in sim_engine.cpp.
struct ReplicationScratch {
  /// Mutable per-gate state, one cache-line-friendly record per gate.
  struct GateMut {
    std::uint64_t input_minterm = 0;
    std::uint64_t pending_seq = 0;  ///< seq of the valid pending commit
    std::uint8_t pending_flag = 0;
    std::uint8_t pending_value = 0;
  };

  /// Per-net observation accumulators, one record per net so a net
  /// change touches one cache line. Net *values* stay in their own dense
  /// byte array (not in this record, and not std::vector<bool>): the
  /// event loop reads values far more often than it records changes, and
  /// the byte array keeps that working set L1-sized.
  struct NetObs {
    double last_change = 0.0;
    double ones_time = 0.0;
    std::uint64_t transitions = 0;
  };

  std::vector<std::uint8_t> net_value;       ///< per net (byte, not bit)
  std::vector<NetObs> net_obs;               ///< per net
  std::vector<GateMut> gate_mut;             ///< per gate
  std::vector<std::uint8_t> internal_state;  ///< node arena, CSR by gate
  EventScheduler scheduler;

  /// Bytes of owned storage (capacities, not sizes) — the high-water
  /// figure surfaced as SimResult::scratch_bytes.
  std::size_t high_water_bytes() const noexcept;
};

class SimEngine {
public:
  /// Validates the netlist and options and precomputes all simulation
  /// tables. `pi_stats` must cover every primary input; the netlist,
  /// tech and library must outlive the engine (the statistics are
  /// copied, so `pi_stats` need not).
  SimEngine(const netlist::Netlist& netlist, const PiStatsTable& pi_stats,
            const celllib::Tech& tech, const SimOptions& options);

  /// Convenience overload over the legacy map boundary.
  SimEngine(const netlist::Netlist& netlist,
            const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
            const celllib::Tech& tech, const SimOptions& options);

  /// One independent replication driven by `seed`. Thread-safe and
  /// deterministic: the engine is immutable after construction and every
  /// run owns its mutable state, so every SimResult field except the
  /// wall-clock diagnostics depends only on `seed` (never on which
  /// thread runs it or on concurrent runs).
  SimResult run(std::uint64_t seed) const;

  /// Same, reusing a caller-owned scratch across calls (the scratch must
  /// not be shared between concurrent runs).
  SimResult run(std::uint64_t seed, ReplicationScratch& scratch) const;

  /// Zero-allocation steady state: reuses both the scratch and the
  /// result's vectors. `result` may be default-constructed; every field
  /// is (re)written.
  void run(std::uint64_t seed, ReplicationScratch& scratch,
           SimResult& result) const;

  /// Replication with the options' own seed (the classic simulate()).
  SimResult run() const { return run(options_.seed); }

  /// The retained pre-rewrite event loop — the differential oracle.
  /// Bit-identical to run(seed) in every non-diagnostic SimResult field.
  SimResult run_reference(std::uint64_t seed) const;

  /// False when the circuit exceeds the packed-event encoding (a gate
  /// wider than 6 inputs, more than 2^16 levels); run(seed) then
  /// executes the reference loop, preserving results at reference speed.
  bool fast_path_available() const noexcept { return fast_ok_; }

  /// The delay model actually in effect: options().delay_model with
  /// `automatic` resolved against use_gate_delays at construction.
  DelayModel resolved_delay_model() const noexcept { return delay_model_; }

  const SimOptions& options() const noexcept { return options_; }
  const netlist::Netlist& netlist() const noexcept { return netlist_; }

private:
  /// Immutable per-gate simulation tables (reference loop).
  struct GateTables {
    boolfn::TruthTable output_fn{0};
    std::vector<boolfn::TruthTable> h_fns;  ///< per internal node
    std::vector<boolfn::TruthTable> g_fns;
    std::vector<double> internal_caps;  ///< per internal node [F]
    double output_cap = 0.0;            ///< diffusion + external load [F]
    std::vector<double> pin_delay;
    int level = 0;  ///< topological level of the output net
  };

  /// Immutable continuous-time Markov input process parameters.
  struct PiProcess {
    double rate_up = 0.0;    ///< 0 -> 1 rate
    double rate_down = 0.0;  ///< 1 -> 0 rate
    double load_cap = 0.0;   ///< wire + fanout pin capacitance [F]
    double prob = 0.0;       ///< equilibrium P(1), initial-state draw
    double energy = 0.0;     ///< energy_per_transition(load_cap) [J]
  };

  struct Replication;  // reference-loop mutable state (sim_engine.cpp)
  struct FastRun;      // hot-path runner (sim_engine.cpp)

  /// The bit-parallel lane (sim/bitsim.hpp) compiles its packed tables
  /// straight from the flat hot-path tables below.
  friend class BitSim;

  void build_gates();
  void build_pis(const PiStatsTable& pi_stats);
  void build_flat();

  const netlist::Netlist& netlist_;
  const celllib::Tech& tech_;
  SimOptions options_;
  DelayModel delay_model_ = DelayModel::elmore;  ///< automatic resolved

  std::vector<GateTables> gates_;           ///< indexed by GateId
  std::vector<PiProcess> pi_;               ///< indexed by NetId
  std::vector<netlist::NetId> pi_order_;    ///< PIs in RNG draw order
  std::vector<netlist::GateId> topo_order_;

  // Hot-path tables (DESIGN.md Sec. 10.2): flat cache-line-oriented
  // images of gates_ / the netlist, sized so the event loop reads
  // nothing but these arrays. Truth tables are single 64-bit words
  // (<= 6 input pins).
  struct GateHot {
    std::uint64_t out_fn = 0;       ///< output function, minterm-indexed
    std::uint64_t level_order = 0;  ///< net level << EventScheduler::seq_bits
    std::uint32_t node_begin = 0;   ///< internal-node arena range
    std::uint32_t node_end = 0;
    std::int32_t out_net = -1;
    double out_energy = 0.0;  ///< J per output transition
  };
  struct NodeHot {
    std::uint64_t h_fn = 0;  ///< charge (pull-up path) function
    std::uint64_t g_fn = 0;  ///< discharge (pull-down path) function
    double energy = 0.0;     ///< J per node transition
  };
  struct Arc {
    double delay = 0.0;            ///< Elmore pin delay of (gate, pin) [s]
    std::uint32_t gate_pin = 0;    ///< gate << 3 | pin
  };

  bool fast_ok_ = false;
  std::vector<GateHot> flat_gate_;           ///< per gate
  std::vector<NodeHot> flat_node_;           ///< per node (CSR via GateHot)
  std::vector<std::uint32_t> flat_in_off_;   ///< [gates+1] input CSR
  std::vector<std::int32_t> flat_in_net_;    ///< per input pin
  std::vector<std::uint32_t> flat_arc_off_;  ///< [nets+1] fanout CSR
  std::vector<Arc> flat_arc_;                ///< per arc
  double pi_rate_sum_ = 0.0;  ///< total equilibrium PI toggle rate [1/s]
  int scheduler_buckets_ = 0; ///< calendar size; 0 = pure heap
  double scheduler_width_ = 0.0;
};

}  // namespace tr::sim
