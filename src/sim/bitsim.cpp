#include "sim/bitsim.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "boolfn/word_eval.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace tr::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// In-bucket order for unit-delay cascade slots: the slot index fixes the
/// step, so (level, seq) ascending completes the (step, level, seq) order.
bool entry_before(const BitSimScratch::Entry& a,
                  const BitSimScratch::Entry& b) noexcept {
  if (a.level != b.level) return a.level < b.level;
  return a.seq < b.seq;
}

}  // namespace

std::size_t BitSimScratch::high_water_bytes() const noexcept {
  return (net_value.capacity() + pin_value.capacity() +
          node_state.capacity() + pending_flag.capacity() +
          pending_value.capacity() + pending_seq.capacity() +
          ow_mask.capacity() + ow_round.capacity() +
          group_mask.capacity() + transitions.capacity() +
          next_tie.capacity()) *
             sizeof(std::uint64_t) +
         (last_change.capacity() + ones_time.capacity() +
          per_gate_energy.capacity() + per_gate_output_energy.capacity() +
          next_toggle.capacity()) *
             sizeof(double) +
         [this] {
           std::size_t bytes = cascade_slot.capacity() *
                               sizeof(std::vector<Entry>);
           for (const auto& bucket : cascade_slot) {
             bytes += bucket.capacity() * sizeof(Entry);
           }
           return bytes;
         }() +
         deferred_lane.capacity() * sizeof(int) +
         scalar_scratch.high_water_bytes();
}

bool BitSim::supported(const SimEngine& engine) noexcept {
  if (!engine.fast_path_available()) return false;
  const DelayModel model = engine.resolved_delay_model();
  if (model == DelayModel::zero) return true;
  if (model != DelayModel::unit) return false;
  // The packed heap orders commits by hop count, which realises the
  // scalar (time, level, seq) order only while the chain-added per-hop
  // times strictly increase — i.e. while unit_delay stays above the
  // floating-point ulp of the simulated window. Below that (a physically
  // meaningless configuration) the lane falls back to the scalar path.
  const SimOptions& o = engine.options();
  return o.unit_delay > 0.0 &&
         o.unit_delay > (o.warmup_time + o.measure_time) *
                            std::numeric_limits<double>::epsilon();
}

BitSim::Prog BitSim::compile(std::uint64_t fn, int gate_vars) {
  const std::uint32_t support = boolfn::word_support(fn, gate_vars);
  Prog prog;
  prog.fn = boolfn::word_compact(fn, gate_vars, support);
  prog.vars_off = static_cast<std::uint32_t>(prog_vars_.size());
  for (int j = 0; j < gate_vars; ++j) {
    if ((support >> j) & 1u) {
      prog_vars_.push_back(static_cast<std::uint8_t>(j));
      ++prog.nvars;
    }
  }
  return prog;
}

std::uint64_t BitSim::eval(const Prog& prog,
                           const std::uint64_t* pin_words) const noexcept {
  std::uint64_t w[6];
  const std::uint8_t* vars = prog_vars_.data() + prog.vars_off;
  for (int i = 0; i < prog.nvars; ++i) w[i] = pin_words[vars[i]];
  return boolfn::eval_lanes(prog.fn, w, prog.nvars);
}

BitSim::BitSim(const SimEngine& engine) : engine_(engine) {
  require(supported(engine),
          "bitsim: engine must resolve to the zero- or unit-delay model "
          "with the simulation fast path available");
  delta_ = engine.resolved_delay_model() == DelayModel::unit
               ? engine.options().unit_delay
               : 0.0;

  const std::size_t gates = engine.flat_gate_.size();
  gate_.resize(gates);
  node_.resize(engine.flat_node_.size());
  std::uint32_t max_level = 0;
  for (std::size_t gi = 0; gi < gates; ++gi) {
    const auto& hot = engine.flat_gate_[gi];
    GateRec& rec = gate_[gi];
    const int vars = static_cast<int>(engine.flat_in_off_[gi + 1] -
                                      engine.flat_in_off_[gi]);
    rec.pin_off = engine.flat_in_off_[gi];
    rec.node_begin = hot.node_begin;
    rec.node_end = hot.node_end;
    rec.level =
        static_cast<std::uint32_t>(hot.level_order >> EventScheduler::seq_bits);
    max_level = std::max(max_level, rec.level);
    rec.out_net = hot.out_net;
    rec.out_energy = hot.out_energy;
    rec.out = compile(hot.out_fn, vars);
    for (std::uint32_t j = hot.node_begin; j < hot.node_end; ++j) {
      node_[j].h = compile(engine.flat_node_[j].h_fn, vars);
      node_[j].g = compile(engine.flat_node_[j].g_fn, vars);
      node_[j].energy = engine.flat_node_[j].energy;
    }
  }
  // A cascade reaches hop m only along an m-edge path from the toggled
  // PI, so one toggle's commits all land within max_level * delta of the
  // toggle; the 2x + 2 margin absorbs the floating-point rounding of the
  // chain-added per-hop times. Deferring a lane whose next toggle falls
  // inside this horizon may over-defer slightly — deferral is exact
  // either way — but can never under-defer.
  span_guard_ = 2.0 * delta_ * static_cast<double>(max_level + 2);
  // Cascade calendar bound: hop steps never exceed max_level + 1 (hop m
  // only reaches gates of level >= m), and zero-delay slots are levels.
  slot_count_ = max_level + 2;

  const std::size_t nets =
      static_cast<std::size_t>(engine.netlist_.net_count());
  arc_off_.assign(engine.flat_arc_off_.begin(), engine.flat_arc_off_.end());
  arc_.resize(engine.flat_arc_.size());
  for (std::size_t a = 0; a < arc_.size(); ++a) {
    arc_[a].gate = engine.flat_arc_[a].gate_pin >> 3;
    arc_[a].pin = engine.flat_arc_[a].gate_pin & 7u;
  }
  TR_ASSERT(arc_off_.size() == nets + 1);

  pi_.reserve(engine.pi_order_.size());
  for (netlist::NetId id : engine.pi_order_) {
    const auto& p = engine.pi_[static_cast<std::size_t>(id)];
    pi_.push_back({id, p.rate_up, p.rate_down, p.prob, p.energy});
  }
  topo_ = engine.topo_order_;
}

/// The packed event loop. Mirrors SimEngine::FastRun per lane: identical
/// RNG draw order, identical event pop order, identical floating-point
/// accumulation order — pinned by tests/test_bitsim_differential.cpp.
struct BitSim::Runner {
  const BitSim& b;
  BitSimScratch& s;
  const double warmup;
  const double t_end;
  const std::uint64_t max_events;
  const std::uint32_t step_inc;  ///< 1 under unit delay, 0 under zero
  std::uint64_t round_seq = 0;
  std::uint64_t live = ~std::uint64_t{0};    ///< lanes still simulating
  std::uint64_t cascade_live = 0;            ///< this round's survivors

  /// Per-round warmup masks over this round's participants: bit k set
  /// when lane k's toggle time is past warmup (strictly, for
  /// observation; inclusively, for energy). Valid wherever the commit
  /// time equals the toggle time — everywhere under zero delay, and in
  /// round stage 2 under both models.
  std::uint64_t obs_mask = 0;
  std::uint64_t en_mask = 0;

  /// Round counter stamping BitSimScratch::ow_round (starts at 1 so the
  /// zero-initialised stamps never match).
  std::uint64_t round_id = 0;
  std::uint64_t round_participants = 0;

  // Bit-sliced per-lane pop counters for the zero-delay drain: plane i
  // holds bit i of each lane's pop count this round, rippled per pop and
  // folded into event_count at round end. The word-level fast path is
  // only safe while no lane can reach max_events mid-round; `headroom`
  // (the smallest per-participant budget left after the toggle) bounds
  // how many pops that takes, and crossing it flushes the planes and
  // drops to the exact per-lane path for the rest of the round.
  static constexpr int kEvPlanes = 24;
  std::array<std::uint64_t, kEvPlanes> ev_planes{};
  int planes_hi = 0;
  std::uint64_t headroom = 0;
  std::uint64_t round_pops = 0;
  bool exact_counts = false;

  /// Adds one pop of `mask` to the bit-sliced counters (ripple carry).
  void count_pops(std::uint64_t mask) {
    std::uint64_t carry = mask;
    int i = 0;
    while (carry) {
      TR_ASSERT(i < kEvPlanes);
      const std::uint64_t t = ev_planes[i] & carry;
      ev_planes[i] ^= carry;
      carry = t;
      ++i;
    }
    if (i > planes_hi) planes_hi = i;
  }

  /// Folds the bit-sliced pop counters into event_count and clears them.
  void flush_event_planes() {
    for (std::uint64_t m = round_participants; m; m &= m - 1) {
      const int k = std::countr_zero(m);
      std::uint64_t c = 0;
      for (int i = 0; i < planes_hi; ++i) {
        c |= ((ev_planes[i] >> k) & 1u) << i;
      }
      s.event_count[static_cast<std::size_t>(k)] += c;
    }
    for (int i = 0; i < planes_hi; ++i) ev_planes[static_cast<std::size_t>(i)] = 0;
    planes_hi = 0;
  }

  Runner(const BitSim& bitsim, BitSimScratch& scratch)
      : b(bitsim),
        s(scratch),
        warmup(bitsim.engine_.options_.warmup_time),
        t_end(bitsim.engine_.options_.warmup_time +
              bitsim.engine_.options_.measure_time),
        max_events(bitsim.engine_.options_.max_events),
        step_inc(bitsim.delta_ > 0.0 ? 1u : 0u) {}

  void initialize(const std::uint64_t* lane_seeds) {
    const std::size_t nets =
        static_cast<std::size_t>(b.engine_.netlist_.net_count());
    const std::size_t gates = b.gate_.size();
    const std::size_t pis = b.pi_.size();
    s.net_value.assign(nets, 0);
    s.pin_value.assign(b.engine_.flat_in_off_.back(), 0);
    s.node_state.assign(b.node_.size(), 0);
    s.pending_flag.assign(gates, 0);
    s.pending_value.assign(gates, 0);
    s.pending_seq.assign(gates * 64, 0);
    s.ow_mask.assign(gates, 0);
    s.ow_round.assign(gates, 0);
    s.group_mask.assign(pis, 0);
    s.last_change.assign(nets * 64, 0.0);
    s.ones_time.assign(nets * 64, 0.0);
    s.transitions.assign(nets * 64, 0);
    s.per_gate_energy.assign(gates * 64, 0.0);
    s.per_gate_output_energy.assign(gates * 64, 0.0);
    s.next_toggle.assign(std::size_t{64} * pis, kInf);
    s.next_tie.assign(std::size_t{64} * pis, 0);
    s.cascade_slot.resize(b.slot_count_);
    for (auto& bucket : s.cascade_slot) bucket.clear();
    s.deferred_lane.clear();
    s.deferred_result.resize(0);
    s.truncated_mask = 0;
    s.deferred_mask = 0;
    for (int k = 0; k < 64; ++k) {
      s.seeds[static_cast<std::size_t>(k)] = lane_seeds[k];
      s.rng[static_cast<std::size_t>(k)].reseed(lane_seeds[k]);
      s.energy[static_cast<std::size_t>(k)] = 0.0;
      s.output_node_energy[static_cast<std::size_t>(k)] = 0.0;
      s.internal_node_energy[static_cast<std::size_t>(k)] = 0.0;
      s.pi_energy[static_cast<std::size_t>(k)] = 0.0;
      s.last_event_time[static_cast<std::size_t>(k)] = 0.0;
      s.t_final[static_cast<std::size_t>(k)] = t_end;
      s.cur_time[static_cast<std::size_t>(k)] = 0.0;
      s.toggle_time[static_cast<std::size_t>(k)] = 0.0;
      s.event_count[static_cast<std::size_t>(k)] = 0;
      s.tie_counter[static_cast<std::size_t>(k)] = 0;
      s.cur_step[static_cast<std::size_t>(k)] = 0;
      s.toggle_pi[static_cast<std::size_t>(k)] = -1;
    }

    // Per-lane initial draws in the scalar loops' exact stream order:
    // equilibrium bernoullis in pi_order, then the first toggle times
    // (the steady-state evaluation between them draws nothing).
    for (int k = 0; k < 64; ++k) {
      Rng& rng = s.rng[static_cast<std::size_t>(k)];
      const std::uint64_t bit = std::uint64_t{1} << k;
      for (std::size_t i = 0; i < pis; ++i) {
        if (rng.bernoulli(b.pi_[i].prob)) {
          s.net_value[static_cast<std::size_t>(b.pi_[i].net)] |= bit;
        }
      }
      for (std::size_t i = 0; i < pis; ++i) {
        const PiRec& p = b.pi_[i];
        const bool v =
            ((s.net_value[static_cast<std::size_t>(p.net)] >> k) & 1u) != 0;
        const double rate = v ? p.rate_down : p.rate_up;
        if (rate <= 0.0) continue;  // frozen input
        s.next_toggle[static_cast<std::size_t>(k) * pis + i] =
            rng.exponential(rate);
        s.next_tie[static_cast<std::size_t>(k) * pis + i] =
            s.tie_counter[static_cast<std::size_t>(k)]++;
      }
    }

    // Steady-state logic values for all lanes at once.
    for (netlist::GateId g : b.topo_) {
      const GateRec& rec = b.gate_[static_cast<std::size_t>(g)];
      std::uint64_t* pins = s.pin_value.data() + rec.pin_off;
      const std::uint32_t in_begin =
          b.engine_.flat_in_off_[static_cast<std::size_t>(g)];
      const std::uint32_t in_end =
          b.engine_.flat_in_off_[static_cast<std::size_t>(g) + 1];
      for (std::uint32_t i = in_begin; i < in_end; ++i) {
        pins[i - in_begin] =
            s.net_value[static_cast<std::size_t>(b.engine_.flat_in_net_[i])];
      }
      s.net_value[static_cast<std::size_t>(rec.out_net)] = b.eval(rec.out, pins);
      for (std::uint32_t j = rec.node_begin; j < rec.node_end; ++j) {
        s.node_state[j] = b.eval(b.node_[j].h, pins);
      }
    }
  }

  /// Scalar record_net_change for one lane: must run before the value
  /// flip (ones_time integrates the pre-flip value).
  void record_change(std::size_t net, int k, double now) {
    const std::size_t idx = net * 64 + static_cast<std::size_t>(k);
    if (now > warmup) {
      const double from =
          s.last_change[idx] > warmup ? s.last_change[idx] : warmup;
      if ((s.net_value[net] >> k) & 1u) s.ones_time[idx] += now - from;
      ++s.transitions[idx];
    }
    s.last_change[idx] = now;
  }

  /// One fanout arc visit for the lanes in `arrived`: flip the packed
  /// pin word, settle internal stack nodes, make the inertial output
  /// decision, schedule commits at `sched_step`.
  void visit(std::uint32_t gi, std::uint32_t pin, std::uint64_t arrived,
             std::uint32_t sched_step) {
    const GateRec& rec = b.gate_[gi];
    std::uint64_t* pins = s.pin_value.data() + rec.pin_off;
    pins[pin] ^= arrived;
    for (std::uint32_t j = rec.node_begin; j < rec.node_end; ++j) {
      const NodeRec& node = b.node_[j];
      const std::uint64_t h = b.eval(node.h, pins);
      const std::uint64_t gq = b.eval(node.g, pins);
      TR_ASSERT((h & gq) == 0);  // no rail-to-rail short in any lane
      const std::uint64_t next = h | (s.node_state[j] & ~gq);
      // Lanes outside `arrived` saw no pin change, and the update is
      // idempotent, so they are already at their fixed point; the mask
      // is belt and braces.
      TR_ASSERT(((next ^ s.node_state[j]) & ~arrived) == 0);
      const std::uint64_t changed = (next ^ s.node_state[j]) & arrived;
      if (changed) {
        s.node_state[j] ^= changed;
        const double en = node.energy;
        // Under zero delay cur_time is the toggle time for the whole
        // round, so the warmup compare is the per-round energy mask.
        std::uint64_t warm = changed & en_mask;
        if (step_inc) {
          warm = 0;
          for (std::uint64_t m = changed; m; m &= m - 1) {
            const int k = std::countr_zero(m);
            if (s.cur_time[static_cast<std::size_t>(k)] >= warmup) {
              warm |= std::uint64_t{1} << k;
            }
          }
        }
        for (std::uint64_t m = warm; m; m &= m - 1) {
          const std::size_t k =
              static_cast<std::size_t>(std::countr_zero(m));
          s.internal_node_energy[k] += en;
          s.energy[k] += en;
          s.per_gate_energy[gi * std::size_t{64} + k] += en;
        }
      }
    }
    // Inertial output decision, all lanes at once: schedule exactly for
    // the arrived lanes whose steady value differs from their target
    // (the pending value when a commit is in flight, the net value
    // otherwise) — the scalar loop's decision tree, whose cancel branch
    // is unreachable (DESIGN.md Sec. 10.5).
    const std::uint64_t steady = b.eval(rec.out, pins);
    const std::uint64_t target =
        (s.pending_flag[gi] & s.pending_value[gi]) |
        (~s.pending_flag[gi] &
         s.net_value[static_cast<std::size_t>(rec.out_net)]);
    const std::uint64_t sched = (steady ^ target) & arrived;
    if (!sched) return;
    const std::uint64_t overwrite = sched & s.pending_flag[gi];
    if (overwrite) {
      // Reschedule while a commit is in flight: the stale calendar entry
      // must lose the pending_seq compare for these lanes.
      if (s.ow_round[gi] != round_id) {
        s.ow_round[gi] = round_id;
        s.ow_mask[gi] = 0;
      }
      s.ow_mask[gi] |= overwrite;
    }
    s.pending_flag[gi] |= sched;
    s.pending_value[gi] = (s.pending_value[gi] & ~sched) | (steady & sched);
    const std::uint64_t seq = round_seq++;
    for (std::uint64_t m = sched; m; m &= m - 1) {
      s.pending_seq[gi * std::size_t{64} +
                    static_cast<std::size_t>(std::countr_zero(m))] = seq;
    }
    const std::uint32_t slot = step_inc ? sched_step : rec.level;
    s.cascade_slot[slot].push_back({sched_step, rec.level, seq, gi, sched});
  }

  /// Round stage 1: per live lane, pick the earliest pending toggle,
  /// apply the scalar loop's window/budget exits, redraw the next toggle
  /// and either defer the lane or enrol it in its PI's toggle group.
  /// Returns the participant mask.
  std::uint64_t stage_toggles() {
    const std::size_t pis = b.pi_.size();
    std::uint64_t participants = 0;
    obs_mask = 0;
    en_mask = 0;
    ++round_id;
    std::uint64_t max_count = 0;
    for (std::uint64_t lanes = live; lanes; lanes &= lanes - 1) {
      const int k = std::countr_zero(lanes);
      const std::size_t lane = static_cast<std::size_t>(k);
      const std::uint64_t bit = std::uint64_t{1} << k;
      // Earliest pending toggle: (time, push order) min — the scalar
      // scheduler's (time, level=0, seq) order restricted to this lane.
      const double* nt = s.next_toggle.data() + lane * pis;
      const std::uint64_t* tie = s.next_tie.data() + lane * pis;
      double tmin = kInf;
      std::uint64_t best_tie = 0;
      std::size_t imin = pis;
      for (std::size_t i = 0; i < pis; ++i) {
        if (nt[i] < tmin) {
          tmin = nt[i];
          best_tie = tie[i];
          imin = i;
        } else if (nt[i] == tmin && imin != pis && tie[i] < best_tie) {
          best_tie = tie[i];
          imin = i;
        }
      }
      if (imin == pis || tmin > t_end) {
        // Queue empty or next event past the window: the scalar loop
        // breaks here without popping; t_final stays t_end.
        live &= ~bit;
        continue;
      }
      if (s.event_count[lane] >= max_events) {
        s.truncated_mask |= bit;
        s.t_final[lane] = s.last_event_time[lane];
        live &= ~bit;
        continue;
      }
      // Pop the toggle and redraw immediately. The scalar loop draws at
      // the end of the toggle handler and nothing in between draws, so
      // the stream position is identical; the reschedule rate is keyed
      // by the post-flip value (here: the inverse of the current bit).
      const PiRec& p = b.pi_[imin];
      const std::size_t pnet = static_cast<std::size_t>(p.net);
      const bool post = ((s.net_value[pnet] >> k) & 1u) == 0;
      const double rate = post ? p.rate_down : p.rate_up;
      if (rate > 0.0) {
        s.next_toggle[lane * pis + imin] =
            tmin + s.rng[lane].exponential(rate);
        s.next_tie[lane * pis + imin] = s.tie_counter[lane]++;
      } else {
        s.next_toggle[lane * pis + imin] = kInf;
      }
      double tnext = kInf;
      for (std::size_t i = 0; i < pis; ++i) tnext = std::min(tnext, nt[i]);
      if (tnext <= tmin + b.span_guard_) {
        // The lane's next toggle lands inside this toggle's cascade
        // horizon, which round-wise packing cannot interleave. Nothing
        // of the lane's state has mutated yet, so hand the whole lane
        // to the scalar fast path (exact, just not packed).
        s.deferred_mask |= bit;
        live &= ~bit;
        continue;
      }
      s.toggle_pi[lane] = static_cast<std::int32_t>(imin);
      if (tmin > warmup) obs_mask |= bit;
      if (tmin >= warmup) en_mask |= bit;
      s.toggle_time[lane] = tmin;
      s.cur_time[lane] = tmin;
      s.cur_step[lane] = 0;
      ++s.event_count[lane];
      if (s.event_count[lane] > max_count) max_count = s.event_count[lane];
      s.last_event_time[lane] = tmin;
      s.group_mask[imin] |= bit;
      participants |= bit;
    }
    cascade_live = participants;
    round_participants = participants;
    headroom = max_events - max_count;  // every participant is < max_events
    return participants;
  }

  /// Round stage 2: apply each PI's toggle group — shared word flip and
  /// fanout visits, per-lane observation/energy accounting — in
  /// ascending PI order.
  void process_groups() {
    const std::size_t pis = b.pi_.size();
    for (std::size_t i = 0; i < pis; ++i) {
      const std::uint64_t group = s.group_mask[i];
      if (!group) continue;
      s.group_mask[i] = 0;
      const PiRec& p = b.pi_[i];
      const std::size_t net = static_cast<std::size_t>(p.net);
      for (std::uint64_t m = group; m; m &= m - 1) {
        const int k = std::countr_zero(m);
        record_change(net, k, s.toggle_time[static_cast<std::size_t>(k)]);
      }
      s.net_value[net] ^= group;
      if (b.engine_.options_.count_pi_energy) {
        const double en = p.energy;
        for (std::uint64_t m = group & en_mask; m; m &= m - 1) {
          const std::size_t k =
              static_cast<std::size_t>(std::countr_zero(m));
          s.pi_energy[k] += en;
          s.energy[k] += en;
        }
      }
      const std::uint32_t arc_end = b.arc_off_[net + 1];
      for (std::uint32_t a = b.arc_off_[net]; a < arc_end; ++a) {
        visit(b.arc_[a].gate, b.arc_[a].pin, group, step_inc);
      }
    }
  }

  /// Round stage 3: drain the cascade calendar in (step, level, seq)
  /// order — a forward sweep over the slot buckets; entries scheduled
  /// while a bucket is processed always land in a later bucket — applying
  /// each entry's commits per lane exactly like the scalar commit handler
  /// (window exit, budget, validity, value compare, record, energy,
  /// propagate).
  void drain() {
    if (step_inc) {
      drain_unit();
    } else {
      drain_zero();
    }
  }

  /// Unit-delay drain: per-lane hop clocks chain-add `delta` per step
  /// (the scalar loop's exact floating-point commit-time computation),
  /// and the window / warmup comparisons are per lane because commit
  /// times differ within a round.
  void drain_unit() {
    for (std::size_t slot = 0; slot < s.cascade_slot.size(); ++slot) {
      auto& bucket = s.cascade_slot[slot];
      if (bucket.empty()) continue;
      std::sort(bucket.begin(), bucket.end(), entry_before);
      for (std::size_t e = 0; e < bucket.size(); ++e) {
        const BitSimScratch::Entry en = bucket[e];
        const std::uint64_t pop_mask = en.mask & cascade_live;
        if (!pop_mask) continue;
        const std::uint32_t gi = en.gate;
        const GateRec& rec = b.gate_[gi];
        std::uint64_t valid = 0;
        for (std::uint64_t m = pop_mask; m; m &= m - 1) {
          const int k = std::countr_zero(m);
          const std::size_t lane = static_cast<std::size_t>(k);
          const std::uint64_t bit = std::uint64_t{1} << k;
          while (s.cur_step[lane] < en.step) {
            s.cur_time[lane] += b.delta_;
            ++s.cur_step[lane];
          }
          const double now = s.cur_time[lane];
          if (now > t_end) {
            // The scalar loop breaks before popping; t_final stays t_end
            // and the lane's remaining entries are all at or after `now`.
            live &= ~bit;
            cascade_live &= ~bit;
            continue;
          }
          if (s.event_count[lane] >= max_events) {
            s.truncated_mask |= bit;
            s.t_final[lane] = s.last_event_time[lane];
            live &= ~bit;
            cascade_live &= ~bit;
            continue;
          }
          ++s.event_count[lane];  // cancelled commits count too
          s.last_event_time[lane] = now;
          if (((s.pending_flag[gi] >> k) & 1u) != 0 &&
              s.pending_seq[gi * std::size_t{64} + lane] == en.seq) {
            valid |= bit;
          }
        }
        if (!valid) continue;
        s.pending_flag[gi] &= ~valid;
        const std::size_t net = static_cast<std::size_t>(rec.out_net);
        const std::uint64_t change =
            (s.pending_value[gi] ^ s.net_value[net]) & valid;
        if (!change) continue;
        for (std::uint64_t m = change; m; m &= m - 1) {
          const int k = std::countr_zero(m);
          record_change(net, k, s.cur_time[static_cast<std::size_t>(k)]);
        }
        s.net_value[net] ^= change;
        const double en_out = rec.out_energy;
        for (std::uint64_t m = change; m; m &= m - 1) {
          const std::size_t k =
              static_cast<std::size_t>(std::countr_zero(m));
          if (s.cur_time[k] >= warmup) {
            s.output_node_energy[k] += en_out;
            s.energy[k] += en_out;
            s.per_gate_energy[gi * std::size_t{64} + k] += en_out;
            s.per_gate_output_energy[gi * std::size_t{64} + k] += en_out;
          }
        }
        const std::uint32_t next_step = en.step + 1;
        const std::uint32_t arc_end = b.arc_off_[net + 1];
        for (std::uint32_t a = b.arc_off_[net]; a < arc_end; ++a) {
          visit(b.arc_[a].gate, b.arc_[a].pin, change, next_step);
        }
      }
      bucket.clear();
    }
  }

  /// Zero-delay drain: every cascade event of lane k in this round
  /// happens at toggle_time[k] (delta = 0), so the per-lane hop clock is
  /// constant, the window check is decided once in stage_toggles
  /// (toggle_time <= t_end, so the scalar loop never breaks mid-cascade),
  /// last_event_time is already toggle_time, and the warmup comparisons
  /// collapse into the per-round obs/energy lane masks. Buckets are
  /// indexed by level and appended in seq order, so no in-bucket sort.
  ///
  /// Event counting and commit validity are word-level on the fast path:
  /// pops ripple into the bit-sliced counters while no lane can reach
  /// max_events this round (round_pops <= headroom guarantees it), and a
  /// popped entry's flagged lanes are valid without the pending_seq
  /// compare unless this round overwrote them (all of a gate's entries
  /// share one level bucket and pop in seq order, so the flag a pop sees
  /// was set by that entry's own visit or by a later overwrite).
  void drain_zero() {
    round_pops = 0;
    exact_counts = headroom == 0;  // a lane may truncate on its first pop
    for (std::size_t slot = 0; slot < s.cascade_slot.size(); ++slot) {
      auto& bucket = s.cascade_slot[slot];
      if (bucket.empty()) continue;
      for (std::size_t e = 0; e < bucket.size(); ++e) {
        const BitSimScratch::Entry en = bucket[e];
        const std::uint64_t pop_mask = en.mask & cascade_live;
        if (!pop_mask) continue;
        const std::uint32_t gi = en.gate;
        std::uint64_t valid;
        if (!exact_counts && ++round_pops > headroom) {
          flush_event_planes();
          exact_counts = true;
        }
        if (!exact_counts) {
          count_pops(pop_mask);  // cancelled commits count too
          valid = pop_mask & s.pending_flag[gi];
          if (valid && s.ow_round[gi] == round_id) {
            for (std::uint64_t m = valid & s.ow_mask[gi]; m; m &= m - 1) {
              const int k = std::countr_zero(m);
              if (s.pending_seq[gi * std::size_t{64} +
                                static_cast<std::size_t>(k)] != en.seq) {
                valid &= ~(std::uint64_t{1} << k);
              }
            }
          }
        } else {
          valid = pop_mask & s.pending_flag[gi];
          const std::uint64_t* seq_base =
              s.pending_seq.data() + gi * std::size_t{64};
          for (std::uint64_t m = pop_mask; m; m &= m - 1) {
            const int k = std::countr_zero(m);
            const std::size_t lane = static_cast<std::size_t>(k);
            if (s.event_count[lane] >= max_events) {
              const std::uint64_t bit = std::uint64_t{1} << k;
              s.truncated_mask |= bit;
              s.t_final[lane] = s.last_event_time[lane];
              live &= ~bit;
              cascade_live &= ~bit;
              valid &= ~bit;
              continue;
            }
            ++s.event_count[lane];  // cancelled commits count too
            if (((valid >> k) & 1u) != 0 && seq_base[lane] != en.seq) {
              valid &= ~(std::uint64_t{1} << k);
            }
          }
        }
        if (!valid) continue;
        s.pending_flag[gi] &= ~valid;
        const GateRec& rec = b.gate_[gi];
        const std::size_t net = static_cast<std::size_t>(rec.out_net);
        const std::uint64_t change =
            (s.pending_value[gi] ^ s.net_value[net]) & valid;
        if (!change) continue;
        // One pass over the changed lanes: record (ones integration uses
        // the pre-flip value bit) and the output energy adds. The warmup
        // mask tests almost always pass (warmup is a sliver of the
        // window), so the branches are well predicted.
        const std::size_t base = net * 64;
        const std::uint64_t pre = s.net_value[net];
        const double en_out = rec.out_energy;
        const std::size_t gbase = gi * std::size_t{64};
        for (std::uint64_t m = change; m; m &= m - 1) {
          const std::size_t k =
              static_cast<std::size_t>(std::countr_zero(m));
          const std::uint64_t bit = std::uint64_t{1} << k;
          const double now = s.toggle_time[k];
          if (obs_mask & bit) {
            if (pre & bit) {
              const double lc = s.last_change[base + k];
              s.ones_time[base + k] += now - (lc > warmup ? lc : warmup);
            }
            ++s.transitions[base + k];
          }
          s.last_change[base + k] = now;
          if (en_mask & bit) {
            s.output_node_energy[k] += en_out;
            s.energy[k] += en_out;
            s.per_gate_energy[gbase + k] += en_out;
            s.per_gate_output_energy[gbase + k] += en_out;
          }
        }
        s.net_value[net] ^= change;
        const std::uint32_t arc_end = b.arc_off_[net + 1];
        for (std::uint32_t a = b.arc_off_[net]; a < arc_end; ++a) {
          visit(b.arc_[a].gate, b.arc_[a].pin, change, 0);
        }
      }
      bucket.clear();
    }
    if (!exact_counts) flush_event_planes();
  }

  void run(const std::uint64_t* lane_seeds) {
    initialize(lane_seeds);
    // Cancellation is polled once per round (one PI toggle across all 64
    // lanes), the packed loop's natural work unit — the same bounded-lag
    // contract as the scalar loops' every-8192-events poll.
    const util::CancellationToken& cancel = b.engine_.options_.cancel;
    const bool cancellable = cancel.valid();
    while (live) {
      if (cancellable) cancel.check("simulate");
      if (stage_toggles()) {
        process_groups();
        drain();
      }
    }
    // Deferred lanes: one scalar fast-path replication each, same seed —
    // exact by the PR 5 differential contract.
    for (std::uint64_t m = s.deferred_mask; m; m &= m - 1) {
      const int k = std::countr_zero(m);
      s.deferred_lane.push_back(k);
      s.deferred_result.emplace_back();
      b.engine_.run(s.seeds[static_cast<std::size_t>(k)], s.scalar_scratch,
                    s.deferred_result.back());
    }
  }
};

void BitSim::run(const std::uint64_t* lane_seeds,
                 BitSimScratch& scratch) const {
  // One passage per packed 64-lane group (the scalar route passes once
  // per replication in SimEngine::run).
  if (util::fault::enabled()) util::fault::check("sim.replicate");
  Runner(*this, scratch).run(lane_seeds);
}

void BitSim::extract_lane(const BitSimScratch& s, int lane,
                          SimResult& out) const {
  TR_ASSERT(lane >= 0 && lane < lane_count);
  const std::uint64_t bit = std::uint64_t{1} << lane;
  if (s.deferred_mask & bit) {
    for (std::size_t d = 0; d < s.deferred_lane.size(); ++d) {
      if (s.deferred_lane[d] == lane) {
        out = s.deferred_result[d];
        out.elapsed_seconds = 0.0;
        out.events_per_sec = 0.0;
        out.scratch_bytes = s.high_water_bytes();
        return;
      }
    }
    TR_ASSERT(!"deferred lane without a stored result");
  }
  const std::size_t nets =
      static_cast<std::size_t>(engine_.netlist_.net_count());
  const std::size_t gates = gate_.size();
  const std::size_t k = static_cast<std::size_t>(lane);
  out.energy = s.energy[k];
  out.output_node_energy = s.output_node_energy[k];
  out.internal_node_energy = s.internal_node_energy[k];
  out.pi_energy = s.pi_energy[k];
  out.event_count = s.event_count[k];
  out.truncated = (s.truncated_mask & bit) != 0;
  out.per_gate_energy.resize(gates);
  out.per_gate_output_energy.resize(gates);
  for (std::size_t g = 0; g < gates; ++g) {
    out.per_gate_energy[g] = s.per_gate_energy[g * 64 + k];
    out.per_gate_output_energy[g] = s.per_gate_output_energy[g * 64 + k];
  }
  // Scalar finalize(): close each net's ones integral at the lane's own
  // final time and normalise over its own (possibly truncated) window.
  const double start = engine_.options_.warmup_time;
  const double t_final = s.t_final[k];
  const double window = std::max(0.0, t_final - start);
  out.measured_time = window;
  out.nets.resize(nets);
  for (std::size_t v = 0; v < nets; ++v) {
    const std::size_t idx = v * 64 + k;
    double ones = s.ones_time[idx];
    if (((s.net_value[v] >> lane) & 1u) != 0 && t_final > start) {
      const double from =
          s.last_change[idx] > start ? s.last_change[idx] : start;
      ones += t_final - from;
    }
    out.nets[v].prob = window > 0.0 ? ones / window : 0.0;
    out.nets[v].density =
        window > 0.0 ? static_cast<double>(s.transitions[idx]) / window : 0.0;
  }
  out.power = window > 0.0 ? out.energy / window : 0.0;
  out.elapsed_seconds = 0.0;
  out.events_per_sec = 0.0;
  out.scratch_bytes = s.high_water_bytes();
}

SimResult BitSim::extract_lane(const BitSimScratch& scratch, int lane) const {
  SimResult out;
  extract_lane(scratch, lane, out);
  return out;
}

}  // namespace tr::sim
