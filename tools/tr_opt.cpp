// tr_opt — batch transistor-reordering optimizer (DESIGN.md Sec. 9).
//
// The production entry point for the paper's suite-shaped flow: load N
// circuits, map them onto the Table 2 library, optimize all of them with
// two-level parallelism (circuit-level fan-out over gate-level scoring)
// against one shared reordering-catalog cache, and emit a deterministic
// machine-readable JSON report.
//
// Usage:
//   tr_opt [circuit ...] [options]
//
// Circuits (positional, repeatable; --suite appends whole suites):
//   <name>.blif   BLIF file: generic (.names) models are mapped onto the
//                 library, mapped (.gate) models are loaded directly
//   <name>.v      structural Verilog (the writer's subset)
//   c17 ...       an embedded classic (see benchgen::classic_names)
//   alu2 ...      a Table 3 / scaled suite entry, generated on the fly
//
// Options:
//   --suite classic|table3|scaled  append the whole suite
//   --scenario A|B       input-statistics scenario (default A)
//   --seed N             master seed; per-circuit streams derive from it
//                        and the circuit name (default 1)
//   --jobs N             circuit-level workers, 0 = hardware (default 0)
//   --threads-per-circuit N  gate-level workers per circuit (default 1)
//   --objective minimize|maximize   power objective (default minimize)
//   --model extended|output_only    gate power model (default extended)
//   --delay-budget F     admit only configurations keeping the critical
//                        path within (1+F)x the original (reference
//                        engine; default off)
//   --restrict-instance  only same-layout-instance reorderings
//   --keep-going         contain per-circuit failures as error records
//                        and finish the rest (default)
//   --fail-fast          abort the batch on the first circuit failure
//   --deadline-ms F      cancel outstanding work F milliseconds after
//                        the run starts; cancelled circuits report
//                        status "cancelled" (all-or-nothing: a circuit
//                        either finishes deterministically or carries
//                        no numbers)
//   --out DIR            write batch.json + one <circuit>.json per
//                        circuit into DIR instead of stdout
//   --no-timing          omit wall-clock fields (byte-stable output)
//   --no-gate-configs    omit the per-gate configuration arrays
//
// stdout carries exactly one JSON document (or nothing with --out);
// progress and the human summary go to stderr. Every JSON field except
// the wall-clock block is bit-identical across runs and --jobs values.
//
// Exit codes (README "Error handling"): 0 = every circuit ok; 1 = fatal
// error (internal/unknown); 2 = usage; 3 = at least one circuit failed
// (takes precedence over cancellation); 4 = circuits were cancelled but
// none failed.
//
// TR_FAULT=site[:nth][:kind][@context] arms the deterministic
// fault-injection harness (util/fault.hpp) for the whole run — the CI
// recovery-path drills run this binary with a poisoned environment.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/classic.hpp"
#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "mapper/mapper.hpp"
#include "netlist/blif.hpp"
#include "netlist/verilog.hpp"
#include "opt/batch.hpp"
#include "opt/batch_report.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using namespace tr;

int usage(const char* error) {
  if (error != nullptr) std::cerr << "tr_opt: " << error << "\n";
  std::cerr
      << "usage: tr_opt [circuit ...] [--suite classic|table3|scaled]\n"
         "              [--scenario A|B] [--seed N] [--jobs N]\n"
         "              [--threads-per-circuit N]\n"
         "              [--objective minimize|maximize]\n"
         "              [--model extended|output_only] [--delay-budget F]\n"
         "              [--restrict-instance] [--keep-going | --fail-fast]\n"
         "              [--deadline-ms F] [--out DIR] [--no-timing]\n"
         "              [--no-gate-configs]\n"
         "circuits: BLIF/structural-Verilog files, embedded classics "
         "(c17, fulladder, cmp2, dec2to4),\n"
         "or generated suite entries (b1 ... alu4, syn1000 ... syn8000)\n";
  return 2;
}

bool is_classic(const std::string& name) {
  for (const std::string& classic : benchgen::classic_names()) {
    if (classic == name) return true;
  }
  return false;
}

const benchgen::BenchmarkSpec* find_suite_entry(const std::string& name) {
  for (const auto& spec : benchgen::table3_suite()) {
    if (spec.name == name) return &spec;
  }
  for (const auto& spec : benchgen::scaled_suite()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

netlist::Netlist load_circuit(const std::string& spec,
                              const celllib::CellLibrary& library) {
  if (is_classic(spec)) {
    const auto logic =
        netlist::read_blif_logic_string(benchgen::classic_blif(spec), spec);
    return mapper::map_network(logic, library);
  }
  if (const benchgen::BenchmarkSpec* entry = find_suite_entry(spec)) {
    return benchgen::build_benchmark(library, *entry);
  }
  if (spec.ends_with(".blif")) {
    std::ifstream in(spec);
    require(in.good(), "cannot open BLIF file '" + spec + "'");
    std::stringstream text;
    text << in.rdbuf();
    // Mapped BLIF carries .gate lines; generic BLIF carries .names
    // blocks and goes through the technology mapper.
    if (text.str().find("\n.gate") != std::string::npos) {
      return netlist::read_blif_mapped_string(text.str(), library, spec);
    }
    return mapper::map_network(
        netlist::read_blif_logic_string(text.str(), spec), library);
  }
  if (spec.ends_with(".v")) {
    std::ifstream in(spec);
    require(in.good(), "cannot open Verilog file '" + spec + "'");
    return netlist::read_verilog(library, in, spec);
  }
  throw Error("unknown circuit '" + spec +
              "' (not a classic, suite entry, .blif or .v file)");
}

std::string sanitize_filename(const std::string& name) {
  std::string out;
  for (const char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    out += safe ? c : '_';
  }
  return out.empty() ? "circuit" : out;
}

/// Strict numeric parsing: a flag value that is not entirely a number of
/// the expected kind is a usage error, never a silent 0 (a mistyped
/// --delay-budget must not quietly enable a zero-increase budget).
long long parse_int(const std::string& flag, const std::string& text) {
  std::size_t consumed = 0;
  long long value = 0;
  std::string detail;
  try {
    value = std::stoll(text, &consumed);
  } catch (const std::exception& e) {
    consumed = 0;
    detail = std::string(": ") + e.what();
  }
  if (consumed != text.size() || text.empty()) {
    std::exit(usage((flag + " expects an integer, got '" + text + "'" +
                     detail).c_str()));
  }
  return value;
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  std::size_t consumed = 0;
  std::uint64_t value = 0;
  std::string detail;
  try {
    value = std::stoull(text, &consumed);
  } catch (const std::exception& e) {
    consumed = 0;
    detail = std::string(": ") + e.what();
  }
  if (consumed != text.size() || text.empty() || text.front() == '-') {
    std::exit(usage((flag + " expects a non-negative integer, got '" + text +
                     "'" + detail).c_str()));
  }
  return value;
}

double parse_double(const std::string& flag, const std::string& text) {
  std::size_t consumed = 0;
  double value = 0.0;
  std::string detail;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception& e) {
    consumed = 0;
    detail = std::string(": ") + e.what();
  }
  if (consumed != text.size() || text.empty()) {
    std::exit(usage((flag + " expects a number, got '" + text + "'" +
                     detail).c_str()));
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> circuit_specs;
  char scenario = 'A';
  std::uint64_t seed = 1;
  std::string out_dir;
  double deadline_ms = -1.0;
  opt::BatchOptions options;
  opt::BatchJsonOptions json;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::exit(usage((std::string(flag) + " needs a value").c_str()));
      }
      return argv[++i];
    };
    if (arg == "--suite") {
      const std::string suite = next("--suite");
      if (suite == "classic") {
        for (const std::string& name : benchgen::classic_names()) {
          circuit_specs.push_back(name);
        }
      } else if (suite == "table3") {
        for (const auto& spec : benchgen::table3_suite()) {
          circuit_specs.push_back(spec.name);
        }
      } else if (suite == "scaled") {
        for (const auto& spec : benchgen::scaled_suite()) {
          circuit_specs.push_back(spec.name);
        }
      } else {
        return usage(("unknown suite '" + suite + "'").c_str());
      }
    } else if (arg == "--scenario") {
      const std::string s = next("--scenario");
      if (s != "A" && s != "B") return usage("scenario must be A or B");
      scenario = s[0];
    } else if (arg == "--seed") {
      seed = parse_u64("--seed", next("--seed"));
    } else if (arg == "--jobs") {
      options.jobs = static_cast<int>(parse_int("--jobs", next("--jobs")));
    } else if (arg == "--threads-per-circuit") {
      options.threads_per_circuit = static_cast<int>(
          parse_int("--threads-per-circuit", next("--threads-per-circuit")));
    } else if (arg == "--objective") {
      const std::string o = next("--objective");
      if (o == "minimize") {
        options.opt.objective = opt::Objective::minimize_power;
      } else if (o == "maximize") {
        options.opt.objective = opt::Objective::maximize_power;
      } else {
        return usage("objective must be minimize or maximize");
      }
    } else if (arg == "--model") {
      const std::string m = next("--model");
      if (m == "extended") {
        options.opt.model = power::ModelKind::extended;
      } else if (m == "output_only") {
        options.opt.model = power::ModelKind::output_only;
      } else {
        return usage("model must be extended or output_only");
      }
    } else if (arg == "--delay-budget") {
      options.opt.max_circuit_delay_increase =
          parse_double("--delay-budget", next("--delay-budget"));
    } else if (arg == "--restrict-instance") {
      options.opt.restrict_to_instance = true;
    } else if (arg == "--keep-going") {
      options.keep_going = true;
    } else if (arg == "--fail-fast") {
      options.keep_going = false;
    } else if (arg == "--deadline-ms") {
      deadline_ms = parse_double("--deadline-ms", next("--deadline-ms"));
      if (deadline_ms < 0.0) {
        return usage("--deadline-ms expects a non-negative number");
      }
    } else if (arg == "--out") {
      out_dir = next("--out");
    } else if (arg == "--no-timing") {
      json.include_timing = false;
    } else if (arg == "--no-gate-configs") {
      json.include_gate_configs = false;
    } else if (arg == "--help" || arg == "-h") {
      return usage(nullptr);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(("unknown option '" + arg + "'").c_str());
    } else {
      circuit_specs.push_back(arg);
    }
  }
  if (circuit_specs.empty()) return usage("no circuits given");

  try {
    // CI recovery drills poison the pipeline through the environment.
    tr::util::fault::install_from_env();

    const celllib::CellLibrary library = celllib::CellLibrary::standard();
    const celllib::Tech tech;

    std::vector<opt::BatchCircuit> batch;
    batch.reserve(circuit_specs.size());
    for (const std::string& spec : circuit_specs) {
      batch.push_back(opt::make_scenario_circuit_guarded(
          spec, scenario, seed, library,
          [&] { return load_circuit(spec, library); }));
      const opt::BatchCircuit& circuit = batch.back();
      if (circuit.load_error) {
        std::cerr << "failed to load " << spec << ": "
                  << circuit.load_error->message << "\n";
      } else {
        std::cerr << "loaded " << circuit.name << ": "
                  << circuit.netlist.gate_count() << " gates\n";
      }
    }

    // Armed after loading so --deadline-ms budgets the optimization
    // itself, not suite generation.
    if (deadline_ms >= 0.0) {
      options.cancel = util::CancellationToken::with_deadline_ms(deadline_ms);
    }

    const opt::BatchOptimizer optimizer(library, tech, options);
    const opt::BatchReport report = optimizer.run(batch);

    if (out_dir.empty()) {
      write_batch_json(batch, report, options, std::cout, json);
    } else {
      namespace fs = std::filesystem;
      fs::create_directories(out_dir);
      {
        std::ofstream out(fs::path(out_dir) / "batch.json");
        require(out.good(), "cannot write to '" + out_dir + "'");
        write_batch_json(batch, report, options, out, json);
      }
      // Deterministic, collision-proof file names: bump a suffix until
      // the final name is genuinely unused ("a", "a", "a_2" must yield
      // three distinct files, not overwrite one another).
      std::set<std::string> taken;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::string base = sanitize_filename(report.circuits[i].name);
        std::string final_name = base;
        for (int suffix = 2; taken.contains(final_name); ++suffix) {
          final_name = base + "_" + std::to_string(suffix);
        }
        taken.insert(final_name);
        std::ofstream out(fs::path(out_dir) / (final_name + ".json"));
        require(out.good(),
                "cannot write circuit report for '" + final_name + "'");
        write_circuit_json(batch[i], report.circuits[i], out, json);
      }
      std::cerr << "reports written to " << out_dir << "/\n";
    }

    std::cerr << "optimized " << report.circuits_ok << "/"
              << report.circuits.size() << " circuits ("
              << report.circuits_failed << " error, "
              << report.circuits_cancelled << " cancelled), "
              << report.gates_total << " gates (" << report.gates_changed
              << " reordered): model power "
              << format_fixed(report.model_power_before * 1e6, 3) << " -> "
              << format_fixed(report.model_power_after * 1e6, 3) << " uW ("
              << format_fixed(percent_reduction(report.model_power_before,
                                                report.model_power_after),
                              1)
              << "% reduction), catalog cache hit rate "
              << format_fixed(report.cache.hit_rate() * 100.0, 1) << "% ("
              << report.cache.hits << "/" << report.cache.lookups()
              << "), " << format_fixed(report.elapsed_ms, 1) << " ms on "
              << report.jobs << " jobs\n";

    // Category exit codes: a circuit error beats cancellation — the
    // caller must look at the report even when a deadline also fired.
    if (report.circuits_failed > 0) return 3;
    if (report.circuits_cancelled > 0) return 4;
  } catch (const Error& e) {
    std::cerr << "tr_opt: error: " << e.what() << "\n";
    switch (e.code()) {
      case ErrorCode::cancelled:
        return 4;
      case ErrorCode::internal:
      case ErrorCode::unknown:
        return 1;
      default:
        return 3;  // parse / invalid input / injected / resource
    }
  } catch (const std::exception& e) {
    std::cerr << "tr_opt: fatal: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
