// tr_opt — batch transistor-reordering optimizer (DESIGN.md Sec. 9).
//
// The production entry point for the paper's suite-shaped flow: load N
// circuits, map them onto the Table 2 library, optimize all of them with
// two-level parallelism (circuit-level fan-out over gate-level scoring)
// against one shared reordering-catalog cache, and emit a deterministic
// machine-readable JSON report.
//
// Besides the one-shot batch mode, the binary is the optimization
// daemon and its client (DESIGN.md Sec. 13): `--serve` keeps one
// process-lifetime library warm across requests behind a framed socket
// protocol; `--connect` sends the same option surface as a request and
// streams the response.
//
// Usage:
//   tr_opt [circuit ...] [options]            one-shot batch
//   tr_opt --serve [--port N] [server options]
//   tr_opt --connect HOST:PORT [circuit ...] [options]
//   tr_opt --connect HOST:PORT --shutdown     ask the daemon to drain
//
// Circuits (positional, repeatable; --suite appends whole suites):
//   <name>.blif   BLIF file: generic (.names) models are mapped onto the
//                 library, mapped (.gate) models are loaded directly
//   <name>.v      structural Verilog (the writer's subset)
//   c17 ...       an embedded classic (see benchgen::classic_names)
//   alu2 ...      a Table 3 / scaled suite entry, generated on the fly
//   (the daemon serves embedded/generated specs only — file paths are
//   rejected in a network request)
//
// Options:
//   --suite classic|table3|scaled  append the whole suite
//   --scenario A|B       input-statistics scenario (default A)
//   --seed N             master seed; per-circuit streams derive from it
//                        and the circuit name (default 1)
//   --jobs N             circuit-level workers, 0 = hardware (default 0)
//   --threads-per-circuit N  gate-level workers per circuit (default 1)
//   --objective minimize|maximize   power objective (default minimize)
//   --model extended|output_only    gate power model (default extended)
//   --delay-budget F     admit only configurations keeping the critical
//                        path within (1+F)x the original; F >= 0
//                        (default off; 0 = zero-slack budget)
//   --engine catalog|reference|anneal  scoring engine (default catalog;
//                        a budgeted catalog run downgrades to the
//                        sequential reference engine with a warning —
//                        use anneal for a global search instead)
//   --anneal-seed N      move-stream seed of --engine anneal (default 1)
//   --anneal-iters N     annealing moves per gate (default 256)
//   --restrict-instance  only same-layout-instance reorderings
//   --keep-going         contain per-circuit failures as error records
//                        and finish the rest (default)
//   --fail-fast          abort the batch on the first circuit failure
//   --deadline-ms F      cancel outstanding work F milliseconds after
//                        the run starts; cancelled circuits report
//                        status "cancelled" (all-or-nothing: a circuit
//                        either finishes deterministically or carries
//                        no numbers)
//   --out DIR            write batch.json + one <circuit>.json per
//                        circuit into DIR instead of stdout
//   --no-timing          omit wall-clock fields (byte-stable output)
//   --no-gate-configs    omit the per-gate configuration arrays
//   --no-cache-stats     omit the catalog_cache block — use together
//                        with --no-timing to byte-compare a one-shot
//                        run against a daemon response (the daemon
//                        always omits both; DESIGN.md Sec. 13.3)
//   --checkpoint DIR     journal every completed circuit into DIR
//                        (crash-consistent entries; DESIGN.md Sec. 15)
//   --resume             with --checkpoint: skip circuits already
//                        journaled in DIR and re-emit their results;
//                        under --no-timing --no-cache-stats the output
//                        is byte-identical to an uninterrupted run
//
// Server options (--serve):
//   --port N             TCP port, 0 = ephemeral (default 0)
//   --host ADDR          bind address (default 127.0.0.1)
//   --port-file PATH     write the bound port to PATH (for scripts)
//   --workers N          concurrent request executors (default 2)
//   --max-queue N        admission bound on queued requests (default 64)
//   --catalog-capacity N LRU bound on cached catalogs, 0 = unbounded
//
// Client options (--connect):
//   --priority N         scheduling priority, higher first (default 0)
//   --shutdown           send a drain request instead of circuits
//   --retries N          extra attempts after a retryable failure
//                        (transport errors, retryable server errors;
//                        default 0 = fail on the first)
//   --retry-base-ms F    backoff before the first retry, doubling each
//                        attempt with deterministic seeded jitter
//                        (default 100)
//   --timeout-ms F       per-attempt connect/read timeout (default:
//                        none — the server enforces --deadline-ms)
//   --request-id ID      idempotency key: the daemon replays the stored
//                        response of an already-completed ID instead of
//                        re-running it, so a retried request is executed
//                        at most once (DESIGN.md Sec. 15.4)
//
// stdout carries exactly one JSON document (or nothing with --out);
// progress and the human summary go to stderr. Every JSON field except
// the wall-clock block is bit-identical across runs and --jobs values.
// A draining daemon dumps its metrics JSON (request counters, catalog
// cache hit/miss/eviction totals) to stdout before exiting.
//
// Exit codes (README "Error handling"): 0 = every circuit ok; 1 = fatal
// error (internal/unknown); 2 = usage; 3 = at least one circuit failed
// (takes precedence over cancellation); 4 = circuits were cancelled but
// none failed. --connect maps the daemon's response onto the same codes.
//
// TR_FAULT=site[:nth][:kind][@context] arms the deterministic
// fault-injection harness (util/fault.hpp) for the whole run — the CI
// recovery-path drills run this binary with a poisoned environment.

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "celllib/library.hpp"
#include "opt/batch.hpp"
#include "opt/batch_report.hpp"
#include "opt/checkpoint.hpp"
#include "opt/circuit_load.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

#ifdef TR_HAVE_SERVER
#include <csignal>

#include "server/client.hpp"
#include "server/retry_client.hpp"
#include "server/server.hpp"
#endif

namespace {

using namespace tr;

int usage(const char* error) {
  if (error != nullptr) std::cerr << "tr_opt: " << error << "\n";
  std::cerr
      << "usage: tr_opt [circuit ...] [--suite classic|table3|scaled]\n"
         "              [--scenario A|B] [--seed N] [--jobs N]\n"
         "              [--threads-per-circuit N]\n"
         "              [--objective minimize|maximize]\n"
         "              [--model extended|output_only] [--delay-budget F]\n"
         "              [--engine catalog|reference|anneal]\n"
         "              [--anneal-seed N] [--anneal-iters N]\n"
         "              [--restrict-instance] [--keep-going | --fail-fast]\n"
         "              [--deadline-ms F] [--out DIR] [--no-timing]\n"
         "              [--no-gate-configs] [--no-cache-stats]\n"
         "              [--checkpoint DIR [--resume]]\n"
         "       tr_opt --serve [--port N] [--host ADDR] [--port-file PATH]\n"
         "              [--workers N] [--max-queue N] [--catalog-capacity N]\n"
         "       tr_opt --connect HOST:PORT [circuit/option ...]\n"
         "              [--priority N] [--retries N] [--retry-base-ms F]\n"
         "              [--timeout-ms F] [--request-id ID]\n"
         "       tr_opt --connect HOST:PORT --shutdown\n"
         "circuits: BLIF/structural-Verilog files, embedded classics "
         "(c17, fulladder, cmp2, dec2to4),\n"
         "or generated suite entries (b1 ... alu4, syn1000 ... syn8000)\n";
  return 2;
}

std::string sanitize_filename(const std::string& name) {
  std::string out;
  for (const char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    out += safe ? c : '_';
  }
  return out.empty() ? "circuit" : out;
}

/// Strict numeric parsing: a flag value that is not entirely a number of
/// the expected kind is a usage error, never a silent 0 (a mistyped
/// --delay-budget must not quietly enable a zero-increase budget).
/// std::from_chars — unlike the sto* family — accepts neither leading
/// whitespace (" 5" must fail) nor "nan"/"inf" for the integer kinds;
/// the finite check below closes the non-finite hole for doubles (a NaN
/// --deadline-ms would otherwise never latch in the cancellation token).
long long parse_int(const std::string& flag, const std::string& text) {
  long long value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (text.empty() || ec != std::errc() || ptr != end) {
    std::exit(
        usage((flag + " expects an integer, got '" + text + "'").c_str()));
  }
  return value;
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  std::uint64_t value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (text.empty() || ec != std::errc() || ptr != end) {
    std::exit(usage(
        (flag + " expects a non-negative integer, got '" + text + "'")
            .c_str()));
  }
  return value;
}

double parse_double(const std::string& flag, const std::string& text) {
  double value = 0.0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (text.empty() || ec != std::errc() || ptr != end ||
      !std::isfinite(value)) {
    std::exit(
        usage((flag + " expects a finite number, got '" + text + "'")
                  .c_str()));
  }
  return value;
}

/// The full option surface of one run, shared by the batch, serve and
/// connect modes (the connect mode serialises it as a request document).
struct Options {
  std::vector<std::string> circuit_specs;
  char scenario = 'A';
  std::uint64_t seed = 1;
  std::string out_dir;
  double deadline_ms = -1.0;
  opt::BatchOptions batch;
  opt::BatchJsonOptions json;

  std::string checkpoint_dir;  ///< empty = journaling off
  bool resume = false;

  bool serve = false;
  std::string connect;  ///< HOST:PORT, empty = one-shot batch mode
  bool shutdown = false;
  int priority = 0;
  int retries = 0;                ///< extra client attempts after the first
  double retry_base_ms = 100.0;   ///< backoff of the first retry
  double timeout_ms = -1.0;       ///< per-attempt connect/read timeout
  std::string request_id;         ///< idempotency key, empty = none
  int port = 0;
  std::string host = "127.0.0.1";
  std::string port_file;
  int workers = 2;
  long long max_queue = 64;
  std::uint64_t catalog_capacity = 0;
};

int run_batch(Options& o) {
  try {
    // CI recovery drills poison the pipeline through the environment.
    tr::util::fault::install_from_env();

    const celllib::CellLibrary library = celllib::CellLibrary::standard();
    const celllib::Tech tech;

    // While the legacy fallback exists, a delay-budgeted catalog run is
    // silently sequential (reference engine, one thread per circuit) —
    // say so instead of leaving the downgrade discoverable only through
    // the per-circuit "engine"/"threads" report fields.
    if (o.batch.opt.max_circuit_delay_increase &&
        o.batch.opt.engine == opt::Engine::catalog) {
      std::cerr << "tr_opt: warning: --delay-budget downgrades the catalog "
                   "engine to the sequential reference engine "
                   "(--threads-per-circuit has no effect); "
                   "use --engine anneal for a parallel-quality global "
                   "search\n";
    }

    std::vector<opt::BatchCircuit> batch;
    batch.reserve(o.circuit_specs.size());
    for (const std::string& spec : o.circuit_specs) {
      batch.push_back(opt::make_scenario_circuit_guarded(
          spec, o.scenario, o.seed, library,
          [&] { return opt::load_circuit_spec(spec, library); }));
      const opt::BatchCircuit& circuit = batch.back();
      if (circuit.load_error) {
        std::cerr << "failed to load " << spec << ": "
                  << circuit.load_error->message << "\n";
      } else {
        std::cerr << "loaded " << circuit.name << ": "
                  << circuit.netlist.gate_count() << " gates\n";
      }
    }

    // Armed after loading so --deadline-ms budgets the optimization
    // itself, not suite generation.
    if (o.deadline_ms >= 0.0) {
      o.batch.cancel = util::CancellationToken::with_deadline_ms(
          o.deadline_ms);
    }

    // Checkpoint journaling (DESIGN.md Sec. 15.2): the manifest pins the
    // run fingerprint, resume re-applies journaled results onto the
    // freshly loaded batch, and the journal hook makes each freshly
    // completed circuit durable before its progress is visible.
    std::optional<opt::checkpoint::CheckpointJournal> journal;
    if (!o.checkpoint_dir.empty()) {
      journal.emplace(
          o.checkpoint_dir, o.resume,
          opt::checkpoint::render_manifest(o.circuit_specs, o.scenario,
                                           o.seed, o.batch));
      if (o.resume) {
        const int resumed = journal->load(batch);
        std::cerr << "tr_opt: resumed " << resumed << "/" << batch.size()
                  << " circuits from " << o.checkpoint_dir << "\n";
      }
      o.batch.journal = [&journal](std::size_t i,
                                   const opt::BatchCircuit& circuit,
                                   const opt::BatchCircuitResult& result) {
        journal->record(i, circuit, result);
      };
    }

    const opt::BatchOptimizer optimizer(library, tech, o.batch);
    const opt::BatchReport report = optimizer.run(batch);

    if (journal) {
      // Journal damage is never fatal — a damaged entry was re-run, a
      // failed write only costs resumability — but it is never silent
      // either.
      for (const opt::checkpoint::JournalWarning& warning :
           journal->warnings()) {
        std::cerr << "tr_opt: warning: journal " << warning.file << " ["
                  << error_code_name(warning.code)
                  << "]: " << warning.message << "\n";
      }
    }

    if (o.out_dir.empty()) {
      write_batch_json(batch, report, o.batch, std::cout, o.json);
    } else {
      namespace fs = std::filesystem;
      fs::create_directories(o.out_dir);
      {
        std::ofstream out(fs::path(o.out_dir) / "batch.json");
        require(out.good(), "cannot write to '" + o.out_dir + "'");
        write_batch_json(batch, report, o.batch, out, o.json);
      }
      // Deterministic, collision-proof file names: bump a suffix until
      // the final name is genuinely unused ("a", "a", "a_2" must yield
      // three distinct files, not overwrite one another).
      std::set<std::string> taken;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::string base = sanitize_filename(report.circuits[i].name);
        std::string final_name = base;
        for (int suffix = 2; taken.contains(final_name); ++suffix) {
          final_name = base + "_" + std::to_string(suffix);
        }
        taken.insert(final_name);
        std::ofstream out(fs::path(o.out_dir) / (final_name + ".json"));
        require(out.good(),
                "cannot write circuit report for '" + final_name + "'");
        write_circuit_json(batch[i], report.circuits[i], out, o.json);
      }
      std::cerr << "reports written to " << o.out_dir << "/\n";
    }

    std::cerr << "optimized " << report.circuits_ok << "/"
              << report.circuits.size() << " circuits ("
              << report.circuits_failed << " error, "
              << report.circuits_cancelled << " cancelled), "
              << report.gates_total << " gates (" << report.gates_changed
              << " reordered): model power "
              << format_fixed(report.model_power_before * 1e6, 3) << " -> "
              << format_fixed(report.model_power_after * 1e6, 3) << " uW ("
              << format_fixed(percent_reduction(report.model_power_before,
                                                report.model_power_after),
                              1)
              << "% reduction), catalog cache hit rate "
              << format_fixed(report.cache.hit_rate() * 100.0, 1) << "% ("
              << report.cache.hits << "/" << report.cache.lookups()
              << "), " << format_fixed(report.elapsed_ms, 1) << " ms on "
              << report.jobs << " jobs\n";

    // Category exit codes: a circuit error beats cancellation — the
    // caller must look at the report even when a deadline also fired.
    if (report.circuits_failed > 0) return 3;
    if (report.circuits_cancelled > 0) return 4;
  } catch (const Error& e) {
    std::cerr << "tr_opt: error: " << e.what() << "\n";
    switch (e.code()) {
      case ErrorCode::cancelled:
        return 4;
      case ErrorCode::internal:
      case ErrorCode::unknown:
        return 1;
      default:
        return 3;  // parse / invalid input / injected / resource
    }
  } catch (const std::exception& e) {
    std::cerr << "tr_opt: fatal: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

#ifdef TR_HAVE_SERVER

server::Server* g_server = nullptr;

extern "C" void handle_drain_signal(int) {
  // request_drain is async-signal-safe (one pipe write).
  if (g_server != nullptr) g_server->request_drain();
}

int run_serve(const Options& o) {
  try {
    tr::util::fault::install_from_env();

    server::ServerConfig config;
    config.host = o.host;
    config.port = o.port;
    config.service.workers = o.workers;
    config.service.max_queue = static_cast<std::size_t>(o.max_queue);
    config.service.catalog_capacity =
        static_cast<std::size_t>(o.catalog_capacity);

    server::Server daemon(config);
    daemon.start();

    g_server = &daemon;
    std::signal(SIGTERM, handle_drain_signal);
    std::signal(SIGINT, handle_drain_signal);
    // MSG_NOSIGNAL covers the framed writes; ignoring SIGPIPE as well
    // keeps any stray fd write from killing the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    if (!o.port_file.empty()) {
      std::ofstream out(o.port_file);
      require(out.good(), "cannot write port file '" + o.port_file + "'");
      out << daemon.port() << "\n";
    }
    std::cerr << "tr_opt: serving on " << config.host << ":" << daemon.port()
              << " (" << o.workers << " workers, queue " << o.max_queue
              << ", catalog capacity "
              << (o.catalog_capacity == 0 ? std::string("unbounded")
                                          : std::to_string(o.catalog_capacity))
              << ")\n";

    daemon.serve();
    g_server = nullptr;

    // The drain-time metrics dump: the one place the cross-request
    // cache hit rate and eviction counters are reported.
    daemon.write_metrics_json(std::cout);
    std::cout << "\n";
    std::cerr << "tr_opt: drained\n";
    return 0;
  } catch (const std::exception& e) {
    g_server = nullptr;
    std::cerr << "tr_opt: fatal: " << e.what() << "\n";
    return 1;
  }
}

/// Splits HOST:PORT (or bare PORT, meaning loopback). Exits with a
/// usage error on anything else.
void parse_endpoint(const std::string& spec, std::string& host, int& port) {
  const std::size_t colon = spec.rfind(':');
  std::string port_text;
  if (colon == std::string::npos) {
    host = "127.0.0.1";
    port_text = spec;
  } else {
    host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  const long long value = parse_int("--connect port", port_text);
  if (value < 1 || value > 65535) {
    std::exit(usage("--connect port must be in 1..65535"));
  }
  port = static_cast<int>(value);
}

std::string render_request(const Options& o) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.key("circuits");
  w.begin_array();
  for (const std::string& spec : o.circuit_specs) w.value(spec);
  w.end_array();
  w.key("scenario");
  w.value(std::string(1, o.scenario));
  w.key("seed");
  w.value(o.seed);
  w.key("jobs");
  w.value(o.batch.jobs);
  w.key("threads_per_circuit");
  w.value(o.batch.threads_per_circuit);
  w.key("objective");
  w.value(o.batch.opt.objective == opt::Objective::minimize_power
              ? "minimize"
              : "maximize");
  w.key("model");
  w.value(o.batch.opt.model == power::ModelKind::extended ? "extended"
                                                          : "output_only");
  w.key("delay_budget");
  if (o.batch.opt.max_circuit_delay_increase) {
    w.value(*o.batch.opt.max_circuit_delay_increase);
  } else {
    w.null_value();
  }
  w.key("engine");
  w.value(opt::engine_name(o.batch.opt.engine));
  w.key("anneal_seed");
  w.value(o.batch.opt.anneal.seed);
  w.key("anneal_iters");
  w.value(o.batch.opt.anneal.iterations_per_gate);
  w.key("restrict_instance");
  w.value(o.batch.opt.restrict_to_instance);
  w.key("keep_going");
  w.value(o.batch.keep_going);
  w.key("deadline_ms");
  if (o.deadline_ms >= 0.0) {
    w.value(o.deadline_ms);
  } else {
    w.null_value();
  }
  w.key("priority");
  w.value(o.priority);
  w.key("gate_configs");
  w.value(o.json.include_gate_configs);
  if (!o.request_id.empty()) {
    w.key("request_id");
    w.value(o.request_id);
  }
  w.end_object();
  return out.str();
}

/// Maps a terminal frame onto the CLI exit codes so `--connect` scripts
/// interchange with one-shot runs.
int connect_exit_code(const server::ClientResult& result) {
  const util::JsonValue doc = util::json_parse(result.payload);
  if (result.type == server::kFrameResponse) {
    const util::JsonValue* totals = doc.find("totals");
    require(totals != nullptr, "client: response carries no totals");
    if (totals->find("circuits_error")->as_i64("circuits_error") > 0) {
      return 3;
    }
    if (totals->find("circuits_cancelled")->as_i64("circuits_cancelled") >
        0) {
      return 4;
    }
    return 0;
  }
  const std::string& code = doc.find("code")->as_string("code");
  std::cerr << "tr_opt: server error [" << code
            << "]: " << doc.find("message")->as_string("message") << "\n";
  if (code == "cancelled") return 4;
  if (code == "internal" || code == "unknown") return 1;
  return 3;
}

int run_connect(const Options& o) {
  try {
    std::string host;
    int port = 0;
    parse_endpoint(o.connect, host, port);

    if (o.shutdown) {
      require(server::send_shutdown(host, port),
              "client: shutdown not acknowledged");
      std::cerr << "tr_opt: server draining\n";
      return 0;
    }

    if (o.circuit_specs.empty()) {
      return usage("no circuits given");
    }
    server::RetryPolicy policy;
    policy.max_retries = o.retries;
    policy.base_backoff_ms = o.retry_base_ms;
    policy.timeout_ms = o.timeout_ms;
    // The jitter stream derives from the master seed so a scripted
    // client's whole retry schedule replays from one --seed value.
    policy.jitter_seed = o.seed;
    policy.on_retry = [](int attempt, double delay_ms,
                         const std::string& why) {
      std::cerr << "tr_opt: retry " << attempt << " in "
                << format_fixed(delay_ms, 0) << " ms: " << why << "\n";
    };
    const server::ClientResult result = server::run_request_with_retry(
        host, port, render_request(o), policy,
        [](const std::string& payload) { std::cerr << payload << "\n"; });
    // The payload goes out verbatim — byte-comparable against a
    // one-shot run with --no-timing --no-cache-stats.
    std::cout << result.payload;
    return connect_exit_code(result);
  } catch (const Error& e) {
    std::cerr << "tr_opt: error: " << e.what() << "\n";
    return e.code() == ErrorCode::cancelled ? 4 : 1;
  } catch (const std::exception& e) {
    std::cerr << "tr_opt: fatal: " << e.what() << "\n";
    return 1;
  }
}

#endif  // TR_HAVE_SERVER

}  // namespace

int main(int argc, char** argv) {
  Options o;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::exit(usage((std::string(flag) + " needs a value").c_str()));
      }
      return argv[++i];
    };
    if (arg == "--suite") {
      const std::string suite = next("--suite");
      try {
        for (std::string& spec : opt::suite_circuit_specs(suite)) {
          o.circuit_specs.push_back(std::move(spec));
        }
      } catch (const Error& e) {
        return usage(e.what());
      }
    } else if (arg == "--scenario") {
      const std::string s = next("--scenario");
      if (s != "A" && s != "B") return usage("scenario must be A or B");
      o.scenario = s[0];
    } else if (arg == "--seed") {
      o.seed = parse_u64("--seed", next("--seed"));
    } else if (arg == "--jobs") {
      o.batch.jobs = static_cast<int>(parse_int("--jobs", next("--jobs")));
    } else if (arg == "--threads-per-circuit") {
      o.batch.threads_per_circuit = static_cast<int>(
          parse_int("--threads-per-circuit", next("--threads-per-circuit")));
    } else if (arg == "--objective") {
      const std::string obj = next("--objective");
      if (obj == "minimize") {
        o.batch.opt.objective = opt::Objective::minimize_power;
      } else if (obj == "maximize") {
        o.batch.opt.objective = opt::Objective::maximize_power;
      } else {
        return usage("objective must be minimize or maximize");
      }
    } else if (arg == "--model") {
      const std::string m = next("--model");
      if (m == "extended") {
        o.batch.opt.model = power::ModelKind::extended;
      } else if (m == "output_only") {
        o.batch.opt.model = power::ModelKind::output_only;
      } else {
        return usage("model must be extended or output_only");
      }
    } else if (arg == "--delay-budget") {
      const double budget =
          parse_double("--delay-budget", next("--delay-budget"));
      // A negative budget used to be the "off" sentinel; now that unset
      // is explicit it is a plain usage error.
      if (budget < 0.0) {
        return usage("--delay-budget expects a non-negative number");
      }
      o.batch.opt.max_circuit_delay_increase = budget;
    } else if (arg == "--engine") {
      const std::string engine = next("--engine");
      if (engine == "catalog") {
        o.batch.opt.engine = opt::Engine::catalog;
      } else if (engine == "reference") {
        o.batch.opt.engine = opt::Engine::reference;
      } else if (engine == "anneal") {
        o.batch.opt.engine = opt::Engine::anneal;
      } else {
        return usage("engine must be catalog, reference or anneal");
      }
    } else if (arg == "--anneal-seed") {
      o.batch.opt.anneal.seed =
          parse_u64("--anneal-seed", next("--anneal-seed"));
    } else if (arg == "--anneal-iters") {
      const long long iters =
          parse_int("--anneal-iters", next("--anneal-iters"));
      if (iters < 1) return usage("--anneal-iters must be at least 1");
      o.batch.opt.anneal.iterations_per_gate = static_cast<int>(iters);
    } else if (arg == "--restrict-instance") {
      o.batch.opt.restrict_to_instance = true;
    } else if (arg == "--keep-going") {
      o.batch.keep_going = true;
    } else if (arg == "--fail-fast") {
      o.batch.keep_going = false;
    } else if (arg == "--deadline-ms") {
      o.deadline_ms = parse_double("--deadline-ms", next("--deadline-ms"));
      if (o.deadline_ms < 0.0) {
        return usage("--deadline-ms expects a non-negative number");
      }
    } else if (arg == "--out") {
      o.out_dir = next("--out");
    } else if (arg == "--checkpoint") {
      o.checkpoint_dir = next("--checkpoint");
    } else if (arg == "--resume") {
      o.resume = true;
    } else if (arg == "--retries") {
      const long long retries = parse_int("--retries", next("--retries"));
      if (retries < 0) return usage("--retries must be non-negative");
      o.retries = static_cast<int>(retries);
    } else if (arg == "--retry-base-ms") {
      o.retry_base_ms =
          parse_double("--retry-base-ms", next("--retry-base-ms"));
      if (o.retry_base_ms < 0.0) {
        return usage("--retry-base-ms expects a non-negative number");
      }
    } else if (arg == "--timeout-ms") {
      o.timeout_ms = parse_double("--timeout-ms", next("--timeout-ms"));
      if (o.timeout_ms <= 0.0) {
        return usage("--timeout-ms expects a positive number");
      }
    } else if (arg == "--request-id") {
      o.request_id = next("--request-id");
      if (o.request_id.empty()) {
        return usage("--request-id expects a non-empty key");
      }
    } else if (arg == "--no-timing") {
      o.json.include_timing = false;
    } else if (arg == "--no-gate-configs") {
      o.json.include_gate_configs = false;
    } else if (arg == "--no-cache-stats") {
      o.json.include_cache_stats = false;
    } else if (arg == "--serve") {
      o.serve = true;
    } else if (arg == "--connect") {
      o.connect = next("--connect");
    } else if (arg == "--shutdown") {
      o.shutdown = true;
    } else if (arg == "--port") {
      const long long port = parse_int("--port", next("--port"));
      if (port < 0 || port > 65535) {
        return usage("--port must be in 0..65535");
      }
      o.port = static_cast<int>(port);
    } else if (arg == "--host") {
      o.host = next("--host");
    } else if (arg == "--port-file") {
      o.port_file = next("--port-file");
    } else if (arg == "--workers") {
      const long long workers = parse_int("--workers", next("--workers"));
      if (workers < 1) return usage("--workers must be at least 1");
      o.workers = static_cast<int>(workers);
    } else if (arg == "--max-queue") {
      o.max_queue = parse_int("--max-queue", next("--max-queue"));
      if (o.max_queue < 1) return usage("--max-queue must be at least 1");
    } else if (arg == "--catalog-capacity") {
      o.catalog_capacity =
          parse_u64("--catalog-capacity", next("--catalog-capacity"));
    } else if (arg == "--priority") {
      o.priority =
          static_cast<int>(parse_int("--priority", next("--priority")));
    } else if (arg == "--help" || arg == "-h") {
      return usage(nullptr);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(("unknown option '" + arg + "'").c_str());
    } else {
      o.circuit_specs.push_back(arg);
    }
  }

  if (o.serve && !o.connect.empty()) {
    return usage("--serve and --connect are mutually exclusive");
  }
  if (o.shutdown && o.connect.empty()) {
    return usage("--shutdown requires --connect");
  }
  if (o.resume && o.checkpoint_dir.empty()) {
    return usage("--resume requires --checkpoint DIR");
  }
  if (!o.checkpoint_dir.empty() && (o.serve || !o.connect.empty())) {
    return usage("--checkpoint applies to one-shot batch mode only");
  }
  if ((o.retries != 0 || o.timeout_ms > 0.0 || !o.request_id.empty()) &&
      o.connect.empty()) {
    return usage("--retries/--timeout-ms/--request-id require --connect");
  }

#ifdef TR_HAVE_SERVER
  if (o.serve) {
    if (!o.circuit_specs.empty()) {
      return usage("--serve takes no circuits");
    }
    return run_serve(o);
  }
  if (!o.connect.empty()) return run_connect(o);
#else
  if (o.serve || !o.connect.empty()) {
    return usage("server mode is not available on this platform");
  }
#endif

  if (o.circuit_specs.empty()) return usage("no circuits given");
  return run_batch(o);
}
