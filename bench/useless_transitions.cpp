// Supports the paper's Sec. 1 premise: "the power consumption of useless
// signal transitions (i.e. those transitions that do not contribute to
// the final result of the circuit) accounts for a large fraction of the
// overall dynamic power consumption".
//
// Method: simulate each circuit twice with identical input waveforms —
// once with per-pin Elmore gate delays (glitches happen) and once in
// levelized zero-delay mode (only functionally required transitions
// commit). The energy difference is the useless-transition share.
//
// Expected shape: a clearly positive glitch share (5-20%) on multilevel
// random logic with unbalanced reconvergent paths. The ripple-carry
// adders stay near zero here because (i) the paper's input model is
// asynchronous (exponential inter-arrival times — two operand bits never
// switch at the same instant, unlike a clocked system) and (ii) the
// balanced full-adder paths produce pulses shorter than the inertial
// gate delay, which swallows them.

#include <iostream>

#include "benchgen/generators.hpp"
#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "opt/scenario.hpp"
#include "sim/switch_sim.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace tr;

double glitch_share(const netlist::Netlist& nl,
                    const std::map<netlist::NetId, boolfn::SignalStats>& stats,
                    const celllib::Tech& tech, std::uint64_t seed) {
  sim::SimOptions so;
  so.seed = seed;
  double mean_density = 0.0;
  for (const auto& [net, s] : stats) mean_density += s.density;
  mean_density /= static_cast<double>(stats.size());
  so.measure_time = 250.0 / mean_density;
  so.warmup_time = so.measure_time * 0.02;
  so.count_pi_energy = false;  // PI waveforms are identical in both runs

  so.use_gate_delays = true;
  const double with_delays = sim::simulate(nl, stats, tech, so).energy;
  so.use_gate_delays = false;
  const double ideal = sim::simulate(nl, stats, tech, so).energy;
  return percent_increase(ideal, with_delays);
}

}  // namespace

int main() {
  using namespace tr;

  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const celllib::Tech tech;

  std::cout << "Sec. 1 premise: energy of useless (glitch) transitions as a\n"
               "share of the ideal (glitch-free) switching energy.\n\n";

  TextTable table({"circuit", "G", "useless energy [% of ideal]"});
  for (int bits : {4, 8, 16, 32}) {
    const netlist::Netlist nl = benchgen::ripple_carry_adder(lib, bits);
    const auto stats = opt::scenario_b(nl, 1e6);
    table.add_row({"rca" + std::to_string(bits), std::to_string(nl.gate_count()),
                   format_fixed(glitch_share(nl, stats, tech, 77), 1)});
  }
  for (const char* name : {"cm138a", "cmb", "c8", "alu2"}) {
    const auto& spec = benchgen::suite_entry(name);
    const netlist::Netlist nl = benchgen::build_benchmark(lib, spec);
    const auto stats = opt::scenario_a(nl, spec.seed ^ 0x77ULL);
    table.add_row({name, std::to_string(nl.gate_count()),
                   format_fixed(glitch_share(nl, stats, tech, 78), 1)});
  }
  table.print(std::cout);

  std::cout << "\nUnbalanced multilevel logic wastes a two-digit percentage "
               "of its energy\non useless transitions; the balanced adders "
               "stay near zero under the\npaper's asynchronous input model "
               "(see header comment). These are exactly\nthe transitions the "
               "stochastic model cannot see — why the paper validates\n"
               "against a switch-level simulator (Table 3, M vs S).\n";
  return 0;
}
