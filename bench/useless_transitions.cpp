// Supports the paper's Sec. 1 premise: "the power consumption of useless
// signal transitions (i.e. those transitions that do not contribute to
// the final result of the circuit) accounts for a large fraction of the
// overall dynamic power consumption".
//
// Method: simulate each circuit with identical input waveforms — once
// with per-pin Elmore gate delays (glitches happen) and once in
// levelized zero-delay mode (only functionally required transitions
// commit). The energy difference is the useless-transition share. The
// whole comparison is replicated as a paired Monte-Carlo estimate
// (DESIGN.md Sec. 8.2): replicate k of both runs shares the seed stream,
// so the share column carries a 95% confidence half-width over the
// per-replicate shares.
//
// Expected shape: a clearly positive glitch share (5-20%) on multilevel
// random logic with unbalanced reconvergent paths. The ripple-carry
// adders stay near zero here because (i) the paper's input model is
// asynchronous (exponential inter-arrival times — two operand bits never
// switch at the same instant, unlike a clocked system) and (ii) the
// balanced full-adder paths produce pulses shorter than the inertial
// gate delay, which swallows them.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>

#include "benchgen/generators.hpp"
#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "opt/scenario.hpp"
#include "sim/monte_carlo.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace tr;

struct GlitchShare {
  double mean = 0.0;  ///< [% of ideal energy]
  double ci95 = 0.0;  ///< 95% half-width over replicates [%]
  bool truncated = false;
  std::uint64_t events = 0;        ///< both runs' simulated events
  double elapsed_seconds = 0.0;    ///< both runs' wall time
  std::size_t scratch_bytes = 0;   ///< scratch high-water
};

GlitchShare glitch_share(const netlist::Netlist& nl,
                         const std::map<netlist::NetId, boolfn::SignalStats>& stats,
                         const celllib::Tech& tech, std::uint64_t seed,
                         int replications = 8) {
  sim::MonteCarloOptions mc;
  mc.sim.seed = seed;
  mc.replications = replications;
  double mean_density = 0.0;
  for (const auto& [net, s] : stats) mean_density += s.density;
  mean_density /= static_cast<double>(stats.size());
  mc.sim.measure_time = 250.0 / mean_density;
  mc.sim.warmup_time = mc.sim.measure_time * 0.02;
  mc.sim.count_pi_energy = false;  // PI waveforms are identical in both runs

  mc.sim.use_gate_delays = true;
  const sim::SimSummary with_delays = sim::monte_carlo(nl, stats, tech, mc);
  mc.sim.use_gate_delays = false;
  const sim::SimSummary ideal = sim::monte_carlo(nl, stats, tech, mc);

  TR_ASSERT(with_delays.replicate_energy.size() ==
            ideal.replicate_energy.size());
  RunningStats share;
  for (std::size_t k = 0; k < ideal.replicate_energy.size(); ++k) {
    share.add(percent_increase(ideal.replicate_energy[k],
                               with_delays.replicate_energy[k]));
  }
  GlitchShare result;
  result.mean = share.mean();
  result.ci95 = share.ci95_half_width();
  result.truncated = with_delays.truncated_replications > 0 ||
                     ideal.truncated_replications > 0;
  result.events = with_delays.total_events + ideal.total_events;
  result.elapsed_seconds =
      with_delays.elapsed_seconds + ideal.elapsed_seconds;
  result.scratch_bytes = std::max(with_delays.scratch_high_water_bytes,
                                  ideal.scratch_high_water_bytes);
  return result;
}

}  // namespace

int main() {
  using namespace tr;

  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const celllib::Tech tech;

  std::cout << "Sec. 1 premise: energy of useless (glitch) transitions as a\n"
               "share of the ideal (glitch-free) switching energy, with the\n"
               "95% CI half-width over paired replications.\n\n";

  TextTable table({"circuit", "G", "useless [% of ideal]", "±95 [%]"});
  bool truncated = false;
  std::uint64_t sim_events = 0;
  double sim_seconds = 0.0;
  std::size_t sim_scratch = 0;
  for (int bits : {4, 8, 16, 32}) {
    const netlist::Netlist nl = benchgen::ripple_carry_adder(lib, bits);
    const auto stats = opt::scenario_b(nl, 1e6);
    const GlitchShare share = glitch_share(nl, stats, tech, 77);
    truncated = truncated || share.truncated;
    sim_events += share.events;
    sim_seconds += share.elapsed_seconds;
    sim_scratch = std::max(sim_scratch, share.scratch_bytes);
    table.add_row({"rca" + std::to_string(bits), std::to_string(nl.gate_count()),
                   format_fixed(share.mean, 1), format_fixed(share.ci95, 1)});
  }
  for (const char* name : {"cm138a", "cmb", "c8", "alu2"}) {
    const auto& spec = benchgen::suite_entry(name);
    const netlist::Netlist nl = benchgen::build_benchmark(lib, spec);
    const auto stats = opt::scenario_a(nl, spec.seed ^ 0x77ULL);
    const GlitchShare share = glitch_share(nl, stats, tech, 78);
    truncated = truncated || share.truncated;
    sim_events += share.events;
    sim_seconds += share.elapsed_seconds;
    sim_scratch = std::max(sim_scratch, share.scratch_bytes);
    table.add_row({name, std::to_string(nl.gate_count()),
                   format_fixed(share.mean, 1), format_fixed(share.ci95, 1)});
  }
  table.print(std::cout);

  std::cout << "\nUnbalanced multilevel logic wastes a two-digit percentage "
               "of its energy\non useless transitions; the balanced adders "
               "stay near zero under the\npaper's asynchronous input model "
               "(see header comment). These are exactly\nthe transitions the "
               "stochastic model cannot see — why the paper validates\n"
               "against a switch-level simulator (Table 3, M vs S).\n";
  std::printf(
      "\nsim engine: %llu events in %.2f s (%.2e events/s), "
      "scratch high-water %.1f KiB\n",
      static_cast<unsigned long long>(sim_events), sim_seconds,
      sim_seconds > 0.0 ? static_cast<double>(sim_events) / sim_seconds : 0.0,
      static_cast<double>(sim_scratch) / 1024.0);
  if (truncated) {
    std::cout << "\nWARNING: at least one replication hit the event budget; "
                 "shares cover partial windows.\n";
    return 1;
  }
  return 0;
}
