// Baseline comparison (paper Sec. 2, related work): how much of the
// reduction does a fixed reordering *rule* (Shen et al. [9] style:
// hottest input next to the output, no stochastic model) capture, and
// how much requires the paper's model?
//
// Expected shape: the rule captures a solid fraction on stack-dominated
// logic (the adders) but leaves a consistent gap to the model-driven
// optimizer on multilevel logic with mixed probabilities — the gap is
// the measurable value of the paper's contribution over its related
// work.

#include <iostream>

#include "benchgen/generators.hpp"
#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "opt/optimizer.hpp"
#include "opt/rule_based.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace tr;

struct Row {
  double rule = 0.0;
  double model = 0.0;
};

Row evaluate(const netlist::Netlist& original,
             const std::map<netlist::NetId, boolfn::SignalStats>& stats,
             const celllib::Tech& tech) {
  const auto activity = power::propagate_activity(original, stats);
  const double p_orig =
      power::circuit_power(original, activity, tech).total();

  netlist::Netlist by_rule = original;
  opt::optimize_rule_based(by_rule, stats);
  netlist::Netlist by_model = original;
  opt::optimize(by_model, stats, tech);

  Row row;
  row.rule = percent_reduction(
      p_orig, power::circuit_power(by_rule, activity, tech).total());
  row.model = percent_reduction(
      p_orig, power::circuit_power(by_model, activity, tech).total());
  return row;
}

}  // namespace

int main() {
  using namespace tr;

  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const celllib::Tech tech;

  std::cout << "Baseline: activity rule (hottest input at the output, no "
               "model — Sec. 2\nrelated work) vs the paper's model-driven "
               "optimizer. Reductions vs the\noriginal mapping, evaluated "
               "with the extended model.\n\n";

  TextTable table({"circuit", "G", "rule [%]", "model [%]", "gap [%]"});
  RunningStats rule_stats, model_stats;

  for (int bits : {8, 16}) {
    const netlist::Netlist nl = benchgen::ripple_carry_adder(lib, bits);
    const auto stats = opt::scenario_b(nl);
    const Row row = evaluate(nl, stats, tech);
    table.add_row({"rca" + std::to_string(bits), std::to_string(nl.gate_count()),
                   format_fixed(row.rule, 1), format_fixed(row.model, 1),
                   format_fixed(row.model - row.rule, 1)});
    rule_stats.add(row.rule);
    model_stats.add(row.model);
  }
  for (const char* name : {"b1", "cm138a", "decod", "x2", "cmb", "mux",
                           "count", "c8", "alu2", "alu4"}) {
    const auto& spec = benchgen::suite_entry(name);
    const netlist::Netlist nl = benchgen::build_benchmark(lib, spec);
    const auto stats = opt::scenario_a(nl, spec.seed ^ 0xBEEFULL);
    const Row row = evaluate(nl, stats, tech);
    table.add_row({name, std::to_string(nl.gate_count()),
                   format_fixed(row.rule, 1), format_fixed(row.model, 1),
                   format_fixed(row.model - row.rule, 1)});
    rule_stats.add(row.rule);
    model_stats.add(row.model);
  }
  table.add_separator();
  table.add_row({"average", "", format_fixed(rule_stats.mean(), 1),
                 format_fixed(model_stats.mean(), 1),
                 format_fixed(model_stats.mean() - rule_stats.mean(), 1)});
  table.print(std::cout);

  std::cout << "\nThe 'gap' column is what the stochastic gate model (Sec. "
               "3.3) buys over\nthe best fixed rule from the related work "
               "the paper improves on.\n";
  return 0;
}
