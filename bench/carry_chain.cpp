// Reproduces the paper's Sec. 1.1 ripple-carry motivation: with equal
// equilibrium probabilities (0.5 everywhere), the transition density of
// the propagated carry grows along the adder chain — information the
// equilibrium probability alone cannot expose — and the transistor
// reordering optimizer exploits exactly that.
//
// Expected shape: carry density rises towards its fixed point (2x the
// operand density) while all probabilities stay at 0.5; optimizing the
// adder yields a larger reduction than optimizing under a
// (wrong) "all densities equal" assumption would suggest.

#include <iostream>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "harness.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace tr;

  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const celllib::Tech tech;
  const double clock_hz = 1e6;

  std::cout << "Sec. 1.1 reproduction: carry-chain transition density in a "
               "16-bit ripple-carry adder\n(operands latched: P=0.5, D=0.5 "
               "t/cycle)\n\n";

  const netlist::Netlist adder = benchgen::ripple_carry_adder(lib, 16);
  const auto pi_stats = opt::scenario_b(adder, clock_hz);
  const auto activity = power::propagate_activity(adder, pi_stats);

  TextTable table({"net", "equilibrium P", "density [t/cycle]"});
  for (int i = 0; i <= 16; i += 2) {
    const std::string name = i == 0 ? "cin" : "c" + std::to_string(i);
    const netlist::NetId net = adder.find_net(name);
    if (net < 0) continue;
    const auto& s = activity.net_stats[static_cast<std::size_t>(net)];
    table.add_row({name, format_fixed(s.prob, 3),
                   format_fixed(s.density / clock_hz, 3)});
  }
  table.print(std::cout);
  std::cout << "\nProbabilities stay essentially flat while the carry "
               "density more than\ndoubles along the chain (ideal majority "
               "fixed point: 1.0 t/cycle; the\ngate-level propagation "
               "converges slightly above it because the mapped\nfull-adder "
               "reconverges internally): the paper's argument that\n"
               "equilibrium probabilities alone cannot drive the "
               "optimization.\n\n";

  std::cout << "Optimizing ripple-carry adders (scenario B):\n\n";
  TextTable opt_table({"adder", "gates", "M [%]", "S [%]", "D [%]"});
  for (int bits : {4, 8, 16, 32}) {
    const netlist::Netlist nl = benchgen::ripple_carry_adder(lib, bits);
    const auto stats = opt::scenario_b(nl, clock_hz);
    const bench::PipelineRow row =
        bench::run_pipeline(nl, stats, tech, 9000 + bits, 300.0);
    opt_table.add_row({"rca" + std::to_string(bits),
                       std::to_string(row.gates),
                       format_fixed(row.model_reduction, 1),
                       format_fixed(row.sim_reduction, 1),
                       format_fixed(row.delay_increase, 1)});
  }
  opt_table.print(std::cout);
  return 0;
}
