// Ablation (DESIGN.md Sec. 5 experiment index): how much of the optimization
// gain comes from modelling *internal* gate nodes — the paper's core
// modelling contribution (Sec. 3.3) — versus the classic output-only
// 1/2 C V^2 D estimate?
//
// For a suite subset under scenario A we optimize twice (extended model
// vs output-only model) and evaluate both results with the extended
// model. Expected shape: the output-only optimizer leaves a measurable
// fraction of the power on the table.

#include <iostream>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace tr;

  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const celllib::Tech tech;

  std::cout << "Ablation: extended model (internal nodes, paper Sec. 3.3) "
               "vs output-only model\nScenario A; all netlists evaluated "
               "with the extended model.\n\n";

  TextTable table({"circuit", "G", "original [uW]", "output-only opt [uW]",
                   "extended opt [uW]", "extra gain [%]"});
  RunningStats extra;
  for (const char* name : {"b1", "cm138a", "decod", "cu", "x2", "cmb",
                           "mux", "count", "c8", "alu2"}) {
    const auto& spec = benchgen::suite_entry(name);
    const netlist::Netlist original = benchgen::build_benchmark(lib, spec);
    const auto stats = opt::scenario_a(original, spec.seed ^ 0x5A5AULL);
    const auto activity = power::propagate_activity(original, stats);

    netlist::Netlist by_extended = original;
    opt::optimize(by_extended, stats, tech);
    netlist::Netlist by_output_only = original;
    opt::OptimizeOptions ablated;
    ablated.model = power::ModelKind::output_only;
    opt::optimize(by_output_only, stats, tech, ablated);

    const double p_orig =
        power::circuit_power(original, activity, tech).total();
    const double p_ext =
        power::circuit_power(by_extended, activity, tech).total();
    const double p_out =
        power::circuit_power(by_output_only, activity, tech).total();
    const double extra_gain = percent_reduction(p_out, p_ext);
    extra.add(extra_gain);

    table.add_row({name, std::to_string(original.gate_count()),
                   format_fixed(p_orig * 1e6, 3),
                   format_fixed(p_out * 1e6, 3),
                   format_fixed(p_ext * 1e6, 3),
                   format_fixed(extra_gain, 1)});
  }
  table.add_separator();
  table.add_row({"average", "", "", "", "", format_fixed(extra.mean(), 1)});
  table.print(std::cout);

  std::cout << "\n'extra gain' is the additional reduction the internal-node-"
               "aware model\nachieves over the classic output-only estimate — "
               "the value of the paper's\nmodelling contribution.\n";
  return 0;
}
