// Reproduces paper Table 2: the cell library with the number of distinct
// transistor reorderings (#C) per gate, plus the number of sea-of-gates
// layout instances needed to cover them (paper Sec. 5.1).
//
// Expected: nand3 = 6, nor3 = 6, aoi21/oai21 = 4, aoi211/oai211 = 12,
// aoi221/oai221 = 24, aoi222/oai222 = 48. The scanned "nor4 = 18" is an
// OCR artefact; the enumeration proves 4! = 24.

#include <iostream>

#include "celllib/library.hpp"
#include "util/table.hpp"

int main() {
  using namespace tr;

  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  std::cout << "Table 2 reproduction: gate library and configuration "
               "counts\n\n";

  TextTable table({"gate", "inputs", "transistors", "#C (formula)",
                   "#C (pivot enum)", "instances"});
  for (const std::string& name : lib.cell_names()) {
    const celllib::Cell& cell = lib.cell(name);
    table.add_row({name, std::to_string(cell.input_count()),
                   std::to_string(cell.transistor_count()),
                   std::to_string(cell.config_count()),
                   std::to_string(cell.topology().all_reorderings().size()),
                   std::to_string(cell.instance_count())});
  }
  table.print(std::cout);

  std::cout << "\n#C (formula) is the closed form k!*prod per series node;"
            << "\n#C (pivot enum) is the paper's Fig. 4 recursive pivoting —"
            << "\nthe two agree for every cell, reproducing the exhaustiveness"
            << "\nclaim of reference [5].\n";
  return 0;
}
