// Performance benchmarks (google-benchmark): supports the paper's claim
// that the model "allows a fast exploration of the different
// configurations of a gate" (Sec. 1) and that exhaustive per-gate
// exploration is feasible (Sec. 4.1). Measures H/G extraction, model
// evaluation, reordering enumeration, whole-gate exploration and the
// end-to-end optimizer.

#include <benchmark/benchmark.h>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "gategraph/gate_graph.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"
#include "power/gate_power.hpp"

namespace {

using namespace tr;

const celllib::CellLibrary& lib() {
  static const celllib::CellLibrary instance = celllib::CellLibrary::standard();
  return instance;
}

void BM_PathFunctions(benchmark::State& state, const char* cell_name) {
  const auto& cell = lib().cell(cell_name);
  for (auto _ : state) {
    const gategraph::GateGraph graph(cell.topology());
    for (int node = gategraph::GateGraph::output_node;
         node < graph.node_count(); ++node) {
      benchmark::DoNotOptimize(graph.h_function(node));
      benchmark::DoNotOptimize(graph.g_function(node));
    }
  }
}
BENCHMARK_CAPTURE(BM_PathFunctions, nand3, "nand3");
BENCHMARK_CAPTURE(BM_PathFunctions, aoi222, "aoi222");

void BM_GatePowerEvaluation(benchmark::State& state, const char* cell_name) {
  const auto& cell = lib().cell(cell_name);
  const celllib::Tech tech;
  const gategraph::GateGraph graph(cell.topology());
  const auto caps = celllib::node_capacitances(graph, tech, 10e-15);
  std::vector<boolfn::SignalStats> inputs(
      static_cast<std::size_t>(cell.input_count()),
      boolfn::SignalStats{0.4, 3e5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        power::evaluate_gate_power(graph, caps, inputs, tech));
  }
}
BENCHMARK_CAPTURE(BM_GatePowerEvaluation, nand2, "nand2");
BENCHMARK_CAPTURE(BM_GatePowerEvaluation, oai221, "oai221");

void BM_ReorderingEnumeration(benchmark::State& state, const char* cell_name) {
  const auto& cell = lib().cell(cell_name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.topology().all_reorderings());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cell.config_count()));
}
BENCHMARK_CAPTURE(BM_ReorderingEnumeration, oai21, "oai21");
BENCHMARK_CAPTURE(BM_ReorderingEnumeration, aoi222, "aoi222");

void BM_ExploreGate(benchmark::State& state, const char* cell_name) {
  // FIND_BEST_REORDERING for one gate: enumerate + model-evaluate all.
  // Builds a one-off catalog per call; BM_ScoreGateCatalog below is the
  // optimizer's steady state (catalog cached in the library).
  const auto& cell = lib().cell(cell_name);
  const celllib::Tech tech;
  std::vector<boolfn::SignalStats> inputs(
      static_cast<std::size_t>(cell.input_count()),
      boolfn::SignalStats{0.4, 3e5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::score_configurations(
        cell.topology(), inputs, 10e-15, tech));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cell.config_count()));
}
BENCHMARK_CAPTURE(BM_ExploreGate, nand3, "nand3");
BENCHMARK_CAPTURE(BM_ExploreGate, aoi221, "aoi221");
BENCHMARK_CAPTURE(BM_ExploreGate, aoi222, "aoi222");

void BM_ScoreGateCatalog(benchmark::State& state, const char* cell_name) {
  // Per-gate scoring work of the optimizer's hot loop: catalog cached,
  // scratch amortised — what every gate after the first of its cell costs.
  const auto& cell = lib().cell(cell_name);
  const celllib::Tech tech;
  const auto catalog = lib().catalog(cell.topology());
  std::vector<boolfn::SignalStats> inputs(
      static_cast<std::size_t>(cell.input_count()),
      boolfn::SignalStats{0.4, 3e5});
  opt::ScoreScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::score_catalog(
        *catalog, inputs, 10e-15, tech, power::ModelKind::extended, scratch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cell.config_count()));
}
BENCHMARK_CAPTURE(BM_ScoreGateCatalog, nand3, "nand3");
BENCHMARK_CAPTURE(BM_ScoreGateCatalog, aoi221, "aoi221");
BENCHMARK_CAPTURE(BM_ScoreGateCatalog, aoi222, "aoi222");

void BM_OptimizeCircuit(benchmark::State& state, const char* bench_name) {
  const auto& spec = benchgen::suite_entry(bench_name);
  const netlist::Netlist original = benchgen::build_benchmark(lib(), spec);
  const auto stats = opt::scenario_a(original, spec.seed);
  const celllib::Tech tech;
  for (auto _ : state) {
    netlist::Netlist working = original;  // fresh copy each iteration
    benchmark::DoNotOptimize(opt::optimize(working, stats, tech));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          original.gate_count());
}
BENCHMARK_CAPTURE(BM_OptimizeCircuit, b1_24_gates, "b1");
BENCHMARK_CAPTURE(BM_OptimizeCircuit, cmb_117_gates, "cmb");
BENCHMARK_CAPTURE(BM_OptimizeCircuit, alu4_540_gates, "alu4");

}  // namespace

BENCHMARK_MAIN();
