// End-to-end optimizer throughput over the Table 3 benchmark suite.
//
// Times opt::optimize() on every suite circuit (scenario A statistics) and
// writes the measurements to a JSON file so the performance trajectory of
// the hot path is recorded run over run (DESIGN.md Sec. 7.5). The CI
// perf-smoke job diffs the result against the checked-in baseline and
// fails on large regressions. A second block measures the batch driver
// (DESIGN.md Sec. 9) over the same circuits: serial vs parallel
// circuit-level fan-out, the measured speedup, and the shared catalog
// cache hit rate.
//
// Usage:
//   perf_optimize_suite [--quick] [--reps=N] [--out=PATH]
//                       [--reference] [--no-reference] [--min-speedup=X]
//                       [--baseline=PATH] [--max-regression=X]
//
//   --quick            run the 10-circuit CI subset instead of all 39
//   --reps=N           repetitions per circuit, best-of-N (default 3)
//   --out=PATH         JSON output path (default BENCH_optimize.json)
//   --reference        also time the retained reference engine and record
//                      the catalog-engine speedup (default: on for --quick,
//                      off for the full suite, where it would dominate)
//   --min-speedup=X    with a reference measurement, exit 1 when the
//                      same-run speedup drops below X. Hardware cancels
//                      out of this ratio, so it catches real regressions
//                      the absolute baseline comparison cannot attribute.
//   --baseline=PATH    compare total_ms against a previous JSON; exit 1
//                      when current > max-regression x baseline
//   --max-regression=X allowed slowdown factor (default 2.0)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "opt/batch.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"

namespace {

using namespace tr;

struct CircuitResult {
  std::string name;
  int gates = 0;
  int gates_changed = 0;
  double ms = 0.0;
  double reference_ms = -1.0;  ///< reference engine, -1 when not measured
};

const std::vector<std::string>& quick_subset() {
  static const std::vector<std::string> names{
      "b1",  "cm82a", "cm42a", "majority", "cm138a",
      "decod", "cm85a", "cmb",  "comp",     "alu2"};
  return names;
}

double time_optimize(const netlist::Netlist& original,
                     const std::map<netlist::NetId, boolfn::SignalStats>& stats,
                     const celllib::Tech& tech, int reps, opt::Engine engine,
                     int* gates_changed) {
  opt::OptimizeOptions options;
  options.engine = engine;
  double best_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    netlist::Netlist working = original;  // fresh canonical configs each rep
    const auto t0 = std::chrono::steady_clock::now();
    const opt::OptimizeReport report =
        opt::optimize(working, stats, tech, options);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best_ms) best_ms = ms;
    *gates_changed = report.gates_changed;
  }
  return best_ms;
}

/// Extracts `"key": <number>` from our own JSON schema; -1 when absent.
double json_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int reps = 3;
  std::string out_path = "BENCH_optimize.json";
  std::string baseline_path;
  double max_regression = 2.0;
  double min_speedup = -1.0;
  int reference = -1;  // -1 = default (follows --quick)
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--reference") {
      reference = 1;
    } else if (arg == "--no-reference") {
      reference = 0;
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::strtod(arg.c_str() + 14, nullptr);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::max(1, std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--max-regression=", 0) == 0) {
      max_regression = std::strtod(arg.c_str() + 17, nullptr);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const bool measure_reference = reference == -1 ? quick : reference == 1;
  const celllib::CellLibrary library = celllib::CellLibrary::standard();
  const celllib::Tech tech;

  std::vector<CircuitResult> results;
  double total_ms = 0.0;
  double reference_total_ms = 0.0;
  long total_gates = 0;
  for (const benchgen::BenchmarkSpec& spec : benchgen::table3_suite()) {
    if (quick) {
      const auto& subset = quick_subset();
      if (std::find(subset.begin(), subset.end(), spec.name) == subset.end()) {
        continue;
      }
    }
    const netlist::Netlist original = benchgen::build_benchmark(library, spec);
    const auto stats = opt::scenario_a(original, spec.seed);

    CircuitResult row;
    row.name = spec.name;
    row.gates = original.gate_count();
    row.ms = time_optimize(original, stats, tech, reps, opt::Engine::catalog,
                           &row.gates_changed);
    if (measure_reference) {
      int ignored = 0;
      row.reference_ms = time_optimize(original, stats, tech, reps,
                                       opt::Engine::reference, &ignored);
      reference_total_ms += row.reference_ms;
    }
    total_ms += row.ms;
    total_gates += row.gates;
    std::printf("%-10s %5d gates  %10.2f ms  %9.0f gates/s\n",
                row.name.c_str(), row.gates, row.ms,
                row.ms > 0.0 ? 1e3 * row.gates / row.ms : 0.0);
    results.push_back(std::move(row));
  }

  const double gates_per_sec =
      total_ms > 0.0 ? 1e3 * static_cast<double>(total_gates) / total_ms : 0.0;
  std::printf("%-10s %5ld gates  %10.2f ms  %9.0f gates/s\n", "TOTAL",
              total_gates, total_ms, gates_per_sec);

  // Batch driver over the same circuits: circuit-level fan-out with the
  // shared catalog cache, serial vs parallel, best-of-reps. Each run uses
  // a fresh library so the cold-cache miss count stays comparable.
  const auto time_batch = [&](int jobs, celllib::CatalogCacheStats* cache,
                              int* jobs_used) {
    double best_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
      const celllib::CellLibrary batch_lib = celllib::CellLibrary::standard();
      std::vector<opt::BatchCircuit> batch;
      for (const CircuitResult& row : results) {
        const benchgen::BenchmarkSpec& spec = benchgen::suite_entry(row.name);
        netlist::Netlist nl = benchgen::build_benchmark(batch_lib, spec);
        auto stats = opt::scenario_a(nl, spec.seed);
        batch.push_back(
            opt::BatchCircuit{spec.name, std::move(nl), std::move(stats), {}});
      }
      opt::BatchOptions options;
      options.jobs = jobs;
      const opt::BatchReport report =
          opt::BatchOptimizer(batch_lib, tech, options).run(batch);
      if (r == 0 || report.elapsed_ms < best_ms) best_ms = report.elapsed_ms;
      if (cache != nullptr) *cache = report.cache;
      if (jobs_used != nullptr) *jobs_used = report.jobs;
    }
    return best_ms;
  };
  const double batch_serial_ms = time_batch(1, nullptr, nullptr);
  celllib::CatalogCacheStats batch_cache;
  int batch_jobs = 0;
  const double batch_parallel_ms = time_batch(0, &batch_cache, &batch_jobs);
  const double batch_speedup =
      batch_parallel_ms > 0.0 ? batch_serial_ms / batch_parallel_ms : 0.0;
  std::printf(
      "batch driver: %10.2f ms serial -> %10.2f ms on %d jobs "
      "(%.2fx), cache hit rate %.1f%% (%llu/%llu)\n",
      batch_serial_ms, batch_parallel_ms, batch_jobs, batch_speedup,
      batch_cache.hit_rate() * 100.0,
      static_cast<unsigned long long>(batch_cache.hits),
      static_cast<unsigned long long>(batch_cache.lookups()));
  const double speedup = measure_reference && total_ms > 0.0
                             ? reference_total_ms / total_ms
                             : -1.0;
  if (measure_reference) {
    std::printf("reference engine: %10.2f ms  -> %.1fx speedup (same run)\n",
                reference_total_ms, speedup);
  }

  std::ostringstream json;
  json << "{\n  \"schema_version\": 1,\n  \"suite\": \""
       << (quick ? "quick" : "full") << "\",\n  \"reps\": " << reps
       << ",\n  \"circuits\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CircuitResult& row = results[i];
    json << "    {\"name\": \"" << row.name << "\", \"gates\": " << row.gates
         << ", \"gates_changed\": " << row.gates_changed
         << ", \"ms\": " << row.ms;
    if (row.reference_ms >= 0.0) {
      json << ", \"reference_ms\": " << row.reference_ms;
    }
    json << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"total_gates\": " << total_gates
       << ",\n  \"total_ms\": " << total_ms;
  if (measure_reference) {
    json << ",\n  \"reference_total_ms\": " << reference_total_ms
         << ",\n  \"speedup\": " << speedup;
  }
  json << ",\n  \"batch\": {\"serial_ms\": " << batch_serial_ms
       << ", \"parallel_ms\": " << batch_parallel_ms
       << ", \"jobs\": " << batch_jobs
       << ", \"speedup\": " << batch_speedup
       << ", \"cache_hits\": " << batch_cache.hits
       << ", \"cache_misses\": " << batch_cache.misses
       << ", \"cache_hit_rate\": " << batch_cache.hit_rate() << "}";
  json << ",\n  \"gates_per_sec\": " << gates_per_sec << "\n}\n";
  std::ofstream(out_path) << json.str();
  std::printf("wrote %s\n", out_path.c_str());

  // Hardware-independent gate: catalog vs reference engine in this very
  // run, so runner speed cancels out of the ratio.
  if (min_speedup > 0.0) {
    if (!measure_reference) {
      std::cerr << "--min-speedup requires a reference measurement "
                   "(--reference)\n";
      return 2;
    }
    if (speedup < min_speedup) {
      std::cerr << "PERF REGRESSION: catalog engine only " << speedup
                << "x faster than the reference engine (floor "
                << min_speedup << "x)\n";
      return 1;
    }
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    // A quick-vs-full mismatch would make the ratio meaningless (a full
    // baseline silently neuters the gate), so the suite modes must agree.
    const std::string expected_suite =
        std::string("\"suite\": \"") + (quick ? "quick" : "full") + "\"";
    if (buffer.str().find(expected_suite) == std::string::npos) {
      std::cerr << "baseline " << baseline_path
                << " was recorded with a different --quick setting than "
                   "this run; regenerate it with matching flags\n";
      return 2;
    }
    const double baseline_ms = json_number(buffer.str(), "total_ms");
    if (baseline_ms <= 0.0) {
      std::cerr << "baseline " << baseline_path << " has no total_ms\n";
      return 2;
    }
    const double ratio = total_ms / baseline_ms;
    std::printf("vs baseline: %.2fx (%s %.2f ms, limit %.2fx)\n", ratio,
                baseline_path.c_str(), baseline_ms, max_regression);
    if (ratio > max_regression) {
      std::cerr << "PERF REGRESSION: " << ratio << "x slower than baseline\n";
      return 1;
    }
  }
  return 0;
}
