// Reproduces paper Fig. 5: the execution of the exhaustive exploration
// algorithm (Fig. 4) on the gate y = !((a1+a2) b), starting from the
// graph of Fig. 2(a) (configuration (C)). All four reorderings of
// Fig. 1(a) must be generated.

#include <iostream>

#include "celllib/library.hpp"
#include "gategraph/gate_graph.hpp"
#include "util/table.hpp"

int main() {
  using namespace tr;
  using gategraph::GateGraph;

  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const celllib::Cell& cell = lib.cell("oai21");

  std::cout << "Fig. 5 reproduction: pivot exploration of y = !((a1+a2) b)\n"
            << "(pins a,b,c of oai21 play a1,a2,b; the starting topology is\n"
            << "the Fig. 2(a) graph with the parallel pair at the output)\n\n";

  const auto configs = cell.topology().all_reorderings();
  TextTable table({"step", "pull-down order (y->vss)",
                   "pull-up order (y->vdd)", "internal nodes"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    table.add_row({std::to_string(i), gategraph::encode(configs[i].nmos()),
                   gategraph::encode(configs[i].pmos()),
                   std::to_string(configs[i].internal_node_count())});
  }
  table.print(std::cout);

  std::cout << "\nGenerated " << configs.size()
            << " distinct reorderings (paper: 4, configurations (A)-(D)).\n"
            << "\nPer-configuration transistor graphs:\n";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const GateGraph graph(configs[i]);
    std::cout << "  step " << i << ":";
    for (const auto& t : graph.transistors()) {
      std::cout << " " << (t.type == gategraph::DeviceType::nmos ? "N" : "P")
                << "(" << cell.pin_names()[static_cast<std::size_t>(t.input)]
                << ":" << graph.node_name(t.node_out) << "-"
                << graph.node_name(t.node_rail) << ")";
    }
    std::cout << '\n';
  }
  return 0;
}
