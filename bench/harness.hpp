#pragma once
// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench prints a self-contained table to stdout in the shape of the
// corresponding paper table; EXPERIMENTS.md records paper-vs-measured.

#include <cstdint>
#include <map>
#include <string>

#include "boolfn/signal.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"

namespace tr::bench {

/// Result of the paper's full evaluation pipeline on one circuit under
/// one input scenario (Table 3 row).
struct PipelineRow {
  std::string name;
  int gates = 0;
  double model_reduction = 0.0;  ///< column M [%]
  double sim_reduction = 0.0;    ///< column S: mean over replications [%]
  /// 95% confidence half-width of S over the paired Monte-Carlo
  /// replications (DESIGN.md Sec. 8.2); 0 when replications < 2.
  double sim_reduction_ci = 0.0;
  int sim_replications = 0;
  /// True when any simulation replication hit the event budget — the S
  /// column then covers partial windows and must not be trusted.
  bool sim_truncated = false;
  double delay_increase = 0.0;   ///< column D [%]

  // Simulation-engine throughput diagnostics (DESIGN.md Sec. 10.4),
  // summed over the paired best/worst Monte-Carlo runs: lets the paper
  // tables double as a coarse perf trend, next to BENCH_sim.json.
  std::uint64_t sim_events = 0;
  double sim_elapsed_seconds = 0.0;
  std::size_t sim_scratch_bytes = 0;  ///< max scratch high-water observed
};

/// Runs optimize-best / optimize-worst, evaluates both with the model and
/// the switch-level simulator, and measures the delay impact of the
/// power-best netlist vs the original mapping.
///
/// The simulated column is a paired Monte-Carlo estimate: replicate k
/// drives the best and the worst netlist with the *same* input waveforms
/// (same derived seed stream), so the per-replicate reduction cancels
/// most of the input-process variance, and the returned CI is over the
/// replicate reductions.
///
/// `sim_toggles_per_pi` controls the simulated window: the measurement
/// time is chosen so an average primary input toggles that many times.
PipelineRow run_pipeline(const netlist::Netlist& original,
                         const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
                         const celllib::Tech& tech,
                         std::uint64_t sim_seed,
                         double sim_toggles_per_pi = 200.0,
                         int sim_replications = 8);

}  // namespace tr::bench
