#pragma once
// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench prints a self-contained table to stdout in the shape of the
// corresponding paper table; EXPERIMENTS.md records paper-vs-measured.

#include <cstdint>
#include <map>
#include <string>

#include "boolfn/signal.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"

namespace tr::bench {

/// Result of the paper's full evaluation pipeline on one circuit under
/// one input scenario (Table 3 row).
struct PipelineRow {
  std::string name;
  int gates = 0;
  double model_reduction = 0.0;  ///< column M [%]
  double sim_reduction = 0.0;    ///< column S [%]
  double delay_increase = 0.0;   ///< column D [%]
};

/// Runs optimize-best / optimize-worst, evaluates both with the model and
/// the switch-level simulator, and measures the delay impact of the
/// power-optimal netlist vs the original mapping.
///
/// `sim_toggles_per_pi` controls the simulated window: the measurement
/// time is chosen so an average primary input toggles that many times.
PipelineRow run_pipeline(const netlist::Netlist& original,
                         const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
                         const celllib::Tech& tech,
                         std::uint64_t sim_seed,
                         double sim_toggles_per_pi = 200.0);

}  // namespace tr::bench
