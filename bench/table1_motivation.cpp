// Reproduces paper Table 1(b) (with Fig. 1): relative power of the four
// transistor reorderings of the gate y = !((a1+a2) b) under two input
// switching-activity scenarios, all equilibrium probabilities 0.5.
//
// Paper values (relative to configuration (D) in case (1)):
//   case (1) D_a1=10K, D_a2=100K, D_b=1M  : (A) 0.81 (B) 0.84 (C) 0.98 (D) 1.0,
//            reduction 19%
//   case (2) D_a1=1M, D_a2=100K, D_b=10K  : (A) 0.58 (B) 0.53 (C) 0.53 (D) 0.48,
//            reduction 17%
// Expected shape: double-digit percentage spread between the best and
// worst configuration, with the optimum flipping between the two cases.

#include <algorithm>
#include <iostream>

#include "celllib/library.hpp"
#include "gategraph/gate_graph.hpp"
#include "power/gate_power.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace tr;
  using boolfn::SignalStats;

  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const celllib::Tech tech;
  // oai21 pins (a,b,c) play the paper's (a1,a2,b).
  const celllib::Cell& cell = lib.cell("oai21");
  const auto configs = cell.topology().all_reorderings();
  const double load = 4.0 * tech.c_gate;  // a fanout-of-2 style load

  struct Case {
    const char* label;
    SignalStats a1, a2, b;
  };
  const Case cases[] = {
      {"case (1): Da1=10K Da2=100K Db=1M",
       {0.5, 1e4}, {0.5, 1e5}, {0.5, 1e6}},
      {"case (2): Da1=1M Da2=100K Db=10K",
       {0.5, 1e6}, {0.5, 1e5}, {0.5, 1e4}},
  };

  std::cout << "Table 1(b) reproduction: power of the four reorderings of\n"
               "y = !((a1+a2) b), relative to the worst configuration of "
               "case (1)\n\n";

  // Compute absolute powers for both cases first so we can normalise the
  // way the paper does (relative to one fixed configuration).
  std::vector<std::vector<double>> power(2);
  for (int c = 0; c < 2; ++c) {
    for (const auto& config : configs) {
      const gategraph::GateGraph graph(config);
      const auto caps = celllib::node_capacitances(graph, tech, load);
      const std::vector<SignalStats> inputs{cases[c].a1, cases[c].a2,
                                            cases[c].b};
      power[static_cast<std::size_t>(c)].push_back(
          power::evaluate_gate_power(graph, caps, inputs, tech).total_power);
    }
  }
  const double reference =
      *std::max_element(power[0].begin(), power[0].end());

  TextTable table({"configuration", "pulldown order", "pullup order",
                   "case (1)", "case (2)"});
  const char* labels[] = {"(I)", "(II)", "(III)", "(IV)"};
  for (std::size_t i = 0; i < configs.size(); ++i) {
    table.add_row({labels[i], gategraph::encode(configs[i].nmos()),
                   gategraph::encode(configs[i].pmos()),
                   format_fixed(power[0][i] / reference, 2),
                   format_fixed(power[1][i] / reference, 2)});
  }
  table.print(std::cout);

  for (int c = 0; c < 2; ++c) {
    const auto& p = power[static_cast<std::size_t>(c)];
    const double best = *std::min_element(p.begin(), p.end());
    const double worst = *std::max_element(p.begin(), p.end());
    const std::size_t best_idx = static_cast<std::size_t>(
        std::min_element(p.begin(), p.end()) - p.begin());
    std::cout << "\n" << cases[c].label << ": best = " << labels[best_idx]
              << ", reduction best-vs-worst = "
              << format_fixed(percent_reduction(worst, best), 1) << "%"
              << " (paper: " << (c == 0 ? "19%" : "17%") << ")";
  }
  std::cout << "\nNote: configuration labels (A)-(D) of Fig. 1(a) are not"
               "\nrecoverable from the scanned paper; (I)-(IV) enumerate the"
               "\nsame four orderings. The optimum flips between the cases,"
               "\nas in the paper.\n";
  return 0;
}
