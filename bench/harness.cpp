#include "harness.hpp"

#include <algorithm>

#include "delay/elmore.hpp"
#include "opt/optimizer.hpp"
#include "power/circuit_power.hpp"
#include "sim/monte_carlo.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace tr::bench {

PipelineRow run_pipeline(
    const netlist::Netlist& original,
    const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
    const celllib::Tech& tech, std::uint64_t sim_seed,
    double sim_toggles_per_pi, int sim_replications) {
  PipelineRow row;
  row.name = original.name();
  row.gates = original.gate_count();

  // Best and worst orderings (paper Sec. 5.1: "one of them contains the
  // best transistor reordering ... the other one the worst one").
  netlist::Netlist best = original;
  netlist::Netlist worst = original;
  opt::optimize(best, pi_stats, tech);
  opt::OptimizeOptions maximize;
  maximize.objective = opt::Objective::maximize_power;
  opt::optimize(worst, pi_stats, tech, maximize);

  // Column M: model power reduction, best vs worst.
  const auto activity = power::propagate_activity(original, pi_stats);
  const double model_best = power::circuit_power(best, activity, tech).total();
  const double model_worst =
      power::circuit_power(worst, activity, tech).total();
  row.model_reduction = percent_reduction(model_worst, model_best);

  // Column S: replicated switch-level simulation. Replicate k of the
  // best and the worst description share the seed stream (identical PI
  // waveforms — the paired design of paper Sec. 5.1), so the reduction
  // is computed per replicate and summarised with a 95% CI.
  double mean_density = 0.0;
  for (const auto& [net, stats] : pi_stats) mean_density += stats.density;
  mean_density /= static_cast<double>(pi_stats.size());
  sim::MonteCarloOptions mc;
  mc.sim.seed = sim_seed;
  mc.sim.measure_time =
      mean_density > 0.0 ? sim_toggles_per_pi / mean_density : 1e-3;
  mc.sim.warmup_time = mc.sim.measure_time * 0.02;
  mc.replications = sim_replications;
  const sim::SimSummary sim_best =
      sim::monte_carlo(best, pi_stats, tech, mc);
  const sim::SimSummary sim_worst =
      sim::monte_carlo(worst, pi_stats, tech, mc);
  TR_ASSERT(sim_best.replicate_energy.size() ==
            sim_worst.replicate_energy.size());
  RunningStats reduction;
  for (std::size_t k = 0; k < sim_best.replicate_energy.size(); ++k) {
    reduction.add(percent_reduction(sim_worst.replicate_energy[k],
                                    sim_best.replicate_energy[k]));
  }
  row.sim_reduction = reduction.mean();
  row.sim_reduction_ci = reduction.ci95_half_width();
  row.sim_replications = static_cast<int>(reduction.count());
  row.sim_truncated = sim_best.truncated_replications > 0 ||
                      sim_worst.truncated_replications > 0;
  row.sim_events = sim_best.total_events + sim_worst.total_events;
  row.sim_elapsed_seconds =
      sim_best.elapsed_seconds + sim_worst.elapsed_seconds;
  row.sim_scratch_bytes = std::max(sim_best.scratch_high_water_bytes,
                                   sim_worst.scratch_high_water_bytes);

  // Column D: delay increase of the power-best mapping vs the original
  // cell-library mapping.
  const double delay_original =
      delay::circuit_delay(original, tech).critical_path;
  const double delay_best = delay::circuit_delay(best, tech).critical_path;
  row.delay_increase = percent_increase(delay_original, delay_best);
  return row;
}

}  // namespace tr::bench
