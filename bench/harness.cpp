#include "harness.hpp"

#include "delay/elmore.hpp"
#include "opt/optimizer.hpp"
#include "power/circuit_power.hpp"
#include "sim/switch_sim.hpp"
#include "util/stats.hpp"

namespace tr::bench {

PipelineRow run_pipeline(
    const netlist::Netlist& original,
    const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
    const celllib::Tech& tech, std::uint64_t sim_seed,
    double sim_toggles_per_pi) {
  PipelineRow row;
  row.name = original.name();
  row.gates = original.gate_count();

  // Best and worst orderings (paper Sec. 5.1: "one of them contains the
  // best transistor reordering ... the other one the worst one").
  netlist::Netlist best = original;
  netlist::Netlist worst = original;
  opt::optimize(best, pi_stats, tech);
  opt::OptimizeOptions maximize;
  maximize.objective = opt::Objective::maximize_power;
  opt::optimize(worst, pi_stats, tech, maximize);

  // Column M: model power reduction, best vs worst.
  const auto activity = power::propagate_activity(original, pi_stats);
  const double model_best = power::circuit_power(best, activity, tech).total();
  const double model_worst =
      power::circuit_power(worst, activity, tech).total();
  row.model_reduction = percent_reduction(model_worst, model_best);

  // Column S: switch-level simulation, same input processes for both
  // descriptions (identical seed -> identical PI waveforms).
  double mean_density = 0.0;
  for (const auto& [net, stats] : pi_stats) mean_density += stats.density;
  mean_density /= static_cast<double>(pi_stats.size());
  sim::SimOptions so;
  so.seed = sim_seed;
  so.measure_time =
      mean_density > 0.0 ? sim_toggles_per_pi / mean_density : 1e-3;
  so.warmup_time = so.measure_time * 0.02;
  const double sim_best = sim::simulate(best, pi_stats, tech, so).power;
  const double sim_worst = sim::simulate(worst, pi_stats, tech, so).power;
  row.sim_reduction = percent_reduction(sim_worst, sim_best);

  // Column D: delay increase of the power-best mapping vs the original
  // cell-library mapping.
  const double delay_original =
      delay::circuit_delay(original, tech).critical_path;
  const double delay_best = delay::circuit_delay(best, tech).critical_path;
  row.delay_increase = percent_increase(delay_original, delay_best);
  return row;
}

}  // namespace tr::bench
