// Reproduces paper Table 3, scenario B (Fig. 6b): the circuit is the
// whole digital system with latched inputs at a fixed clock — every
// primary input has equilibrium probability 0.5 and 0.5 transitions per
// cycle.
//
// Paper finding: "The power reduction in scenario B is roughly half the
// one in scenario A." Expected shape: positive average M and S, smaller
// than the scenario A averages.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "harness.hpp"
#include "opt/scenario.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace tr;

  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const celllib::Tech tech;
  const double clock_hz = 1e6;

  std::cout << "Table 3 reproduction, scenario B (latched inputs, P=0.5, "
               "D=0.5 t/cycle @ 1 MHz)\n"
            << "S carries the paired Monte-Carlo 95% CI half-width "
               "(DESIGN.md Sec. 8.2)\n\n";

  TextTable table({"circuit", "G", "M [%]", "S [%]", "S ±95 [%]", "D [%]"});
  RunningStats m_stats, s_stats, d_stats;
  bool truncated = false;
  std::uint64_t sim_events = 0;
  double sim_seconds = 0.0;
  std::size_t sim_scratch = 0;
  for (const benchgen::BenchmarkSpec& spec : benchgen::table3_suite()) {
    const netlist::Netlist original = benchgen::build_benchmark(lib, spec);
    const auto pi_stats = opt::scenario_b(original, clock_hz);
    const bench::PipelineRow row =
        bench::run_pipeline(original, pi_stats, tech, spec.seed + 2, 150.0);
    truncated = truncated || row.sim_truncated;
    sim_events += row.sim_events;
    sim_seconds += row.sim_elapsed_seconds;
    sim_scratch = std::max(sim_scratch, row.sim_scratch_bytes);
    table.add_row({row.name, std::to_string(row.gates),
                   format_fixed(row.model_reduction, 1),
                   format_fixed(row.sim_reduction, 1),
                   format_fixed(row.sim_reduction_ci, 1),
                   format_fixed(row.delay_increase, 1)});
    m_stats.add(row.model_reduction);
    s_stats.add(row.sim_reduction);
    d_stats.add(row.delay_increase);
  }
  table.add_separator();
  table.add_row({"average", "",
                 format_fixed(m_stats.mean(), 1),
                 format_fixed(s_stats.mean(), 1),
                 format_fixed(s_stats.ci95_half_width(), 1),
                 format_fixed(d_stats.mean(), 1)});
  table.print(std::cout);

  std::cout << "\nPaper finding: scenario B reductions are roughly half the\n"
            << "scenario A ones (compare with table3_scenario_a). Latch and\n"
            << "clock-line power is not included, as in the paper.\n";
  std::printf(
      "\nsim engine: %llu events in %.2f s (%.2e events/s), "
      "scratch high-water %.1f KiB\n",
      static_cast<unsigned long long>(sim_events), sim_seconds,
      sim_seconds > 0.0 ? static_cast<double>(sim_events) / sim_seconds : 0.0,
      static_cast<double>(sim_scratch) / 1024.0);
  if (truncated) {
    std::cout << "\nWARNING: at least one simulation replication hit the "
                 "event budget;\nthe S column covers partial windows.\n";
    return 1;
  }
  return 0;
}
