// Monte-Carlo simulation throughput over the classic and scaled
// benchmark tiers (DESIGN.md Sec. 10.4).
//
// Times the rewritten simulation hot path (flat arenas + indexed event
// scheduler, serial and thread-pool replication) against the retained
// reference event loop on every suite circuit, and writes the
// measurements to BENCH_sim.json so the performance trajectory of the
// Monte-Carlo layer is recorded run over run — the sim-side counterpart
// of perf_optimize_suite. The CI sim-perf-smoke job diffs the result
// against the checked-in baseline (bench/BENCH_sim.baseline.json) and
// fails on large regressions; the hardware-independent gate is the
// same-run speedup of the fast path over the reference loop on the
// scaled tier (ISSUE 5 acceptance: >= 3x).
//
// The bit-parallel tier (bp2000 … bp8000, deep 2-PI transparency
// chains) times the packed 64-lane Monte-Carlo route (sim/bitsim.hpp)
// against the scalar replication loop under the zero-delay model; its
// hardware-independent gate is --min-bp-speedup (ISSUE 6 acceptance:
// >= 8x effective replication throughput).
//
// Usage:
//   perf_sim_suite [--quick] [--reps=N] [--out=PATH]
//                  [--no-reference] [--min-speedup=X] [--min-bp-speedup=X]
//                  [--baseline=PATH] [--max-regression=X]
//
//   --quick            CI subset (4 classic + syn1000/2000/4000) instead
//                      of the full classic sample + whole scaled tier;
//                      the bit-parallel tier always runs in full
//   --reps=N           Monte-Carlo replications per circuit (default 8)
//   --out=PATH         JSON output path (default BENCH_sim.json)
//   --no-reference     skip the reference-loop measurement (no speedup)
//   --min-speedup=X    exit 1 when the scaled-tier replications/sec
//                      speedup (fast vs reference, same run — hardware
//                      cancels out) drops below X
//   --min-bp-speedup=X exit 1 when the bit-parallel tier's packed vs
//                      scalar per-replicate speedup (same run) drops
//                      below X
//   --baseline=PATH    compare total_fast_ms against a previous JSON;
//                      exit 1 when current > max-regression x baseline
//   --max-regression=X allowed slowdown factor (default 2.0)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "opt/scenario.hpp"
#include "sim/monte_carlo.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace tr;

struct CircuitRow {
  std::string name;
  std::string tier;  ///< "classic" or "scaled"
  int gates = 0;
  int nets = 0;
  int replications = 0;
  std::uint64_t events = 0;          ///< total events, serial fast run
  double fast_ms = 0.0;              ///< serial fast-path wall time
  double fast_reps_per_sec = 0.0;
  double fast_events_per_sec = 0.0;
  double reference_ms = -1.0;        ///< reference loop, -1 = not measured
  double reference_reps_per_sec = 0.0;
  double speedup = -1.0;             ///< fast vs reference reps/sec
  double parallel_ms = 0.0;          ///< thread-pool fast path
  double parallel_reps_per_sec = 0.0;
  int threads = 0;
  std::uint64_t scratch_bytes = 0;   ///< scratch high-water
};

struct BpRow {
  std::string name;
  int gates = 0;
  int nets = 0;
  std::uint64_t events = 0;          ///< total events, packed run
  double packed_ms = 0.0;            ///< 64-lane bit-parallel route
  double packed_reps_per_sec = 0.0;
  double scalar_ms = 0.0;            ///< scalar route, same 64 streams
  double scalar_reps_per_sec = 0.0;
  double speedup = 0.0;              ///< scalar vs packed per-replicate
};

struct TierSpec {
  const benchgen::BenchmarkSpec* spec;
  const char* tier;
};

std::vector<TierSpec> pick_circuits(bool quick) {
  const auto classic_pick = [&]() -> std::vector<std::string> {
    if (quick) return {"cm82a", "decod", "comp", "alu2"};
    return {"b1",  "cm82a", "majority", "decod", "cm85a",
            "cmb", "comp",  "c8",       "alu2",  "alu4"};
  }();
  std::vector<TierSpec> picks;
  for (const std::string& name : classic_pick) {
    picks.push_back({&benchgen::suite_entry(name), "classic"});
  }
  for (const benchgen::BenchmarkSpec& spec : benchgen::scaled_suite()) {
    if (quick && spec.gates > 4000) continue;
    picks.push_back({&benchgen::suite_entry(spec.name), "scaled"});
  }
  return picks;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Extracts `"key": <number>` from our own JSON schema; -1 when absent.
double json_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool measure_reference = true;
  int reps = 8;
  std::string out_path = "BENCH_sim.json";
  std::string baseline_path;
  double max_regression = 2.0;
  double min_speedup = -1.0;
  double min_bp_speedup = -1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--no-reference") {
      measure_reference = false;
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::strtod(arg.c_str() + 14, nullptr);
    } else if (arg.rfind("--min-bp-speedup=", 0) == 0) {
      min_bp_speedup = std::strtod(arg.c_str() + 17, nullptr);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::max(2, std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--max-regression=", 0) == 0) {
      max_regression = std::strtod(arg.c_str() + 17, nullptr);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const celllib::CellLibrary library = celllib::CellLibrary::standard();
  const celllib::Tech tech;
  // One pool for every pooled measurement: workers (and their reusable
  // replication scratches) persist across circuits, as in production.
  util::ThreadPool pool;

  std::vector<CircuitRow> rows;
  double total_fast_ms = 0.0;
  double total_parallel_ms = 0.0;
  double scaled_fast_rep_ms = 0.0;       // per-replicate ms, scaled tier
  double scaled_reference_rep_ms = 0.0;
  bool truncated = false;

  for (const TierSpec& pick : pick_circuits(quick)) {
    const benchgen::BenchmarkSpec& spec = *pick.spec;
    const netlist::Netlist nl = benchgen::build_benchmark(library, spec);
    const auto stats = opt::scenario_a(nl, spec.seed ^ 0x51ABULL);

    // Window sized so an average PI toggles ~40 times per replicate —
    // long enough that the event loop (not setup) dominates, short
    // enough that the full tier fits in a CI smoke job.
    double mean_density = 0.0;
    for (const auto& [net, s] : stats) mean_density += s.density;
    mean_density /= static_cast<double>(stats.size());
    sim::MonteCarloOptions mc;
    mc.sim.seed = spec.seed + 9;
    mc.sim.measure_time = 40.0 / mean_density;
    mc.sim.warmup_time = mc.sim.measure_time * 0.02;
    mc.replications = reps;

    const sim::SimEngine engine(nl, stats, tech, mc.sim);

    CircuitRow row;
    row.name = spec.name;
    row.tier = pick.tier;
    row.gates = nl.gate_count();
    row.nets = nl.net_count();
    row.replications = reps;

    // Serial fast path (the per-replicate unit the speedup ratio uses).
    mc.threads = 1;
    auto t0 = std::chrono::steady_clock::now();
    const sim::SimSummary serial = sim::monte_carlo(engine, mc);
    row.fast_ms = ms_since(t0);
    row.events = serial.total_events;
    row.fast_reps_per_sec = 1e3 * reps / row.fast_ms;
    row.fast_events_per_sec =
        1e3 * static_cast<double>(serial.total_events) / row.fast_ms;
    row.scratch_bytes = serial.scratch_high_water_bytes;
    truncated = truncated || serial.truncated_replications > 0;

    // Thread-pool fast path (shared workers, scratch reuse across
    // circuits).
    t0 = std::chrono::steady_clock::now();
    const sim::SimSummary parallel = sim::monte_carlo(engine, mc, &pool);
    row.parallel_ms = ms_since(t0);
    row.parallel_reps_per_sec = 1e3 * reps / row.parallel_ms;
    row.threads = pool.thread_count();

    // Reference loop, same replicate streams (fewer reps: it is the
    // slow side of the ratio; per-replicate cost is what matters).
    if (measure_reference) {
      const int ref_reps = std::max(2, reps / 4);
      t0 = std::chrono::steady_clock::now();
      for (int k = 0; k < ref_reps; ++k) {
        const sim::SimResult r =
            engine.run_reference(Rng::derive_stream(mc.sim.seed, k));
        truncated = truncated || r.truncated;
      }
      row.reference_ms = ms_since(t0) * reps / ref_reps;  // scaled to reps
      row.reference_reps_per_sec = 1e3 * reps / row.reference_ms;
      row.speedup = row.reference_ms / row.fast_ms;
    }

    total_fast_ms += row.fast_ms;
    total_parallel_ms += row.parallel_ms;
    if (row.tier == std::string("scaled")) {
      scaled_fast_rep_ms += row.fast_ms / reps;
      if (measure_reference) scaled_reference_rep_ms += row.reference_ms / reps;
    }

    std::printf(
        "%-8s %-7s %5d gates %9llu ev  %8.2f ms  %7.0f reps/s  %9.2e ev/s",
        row.name.c_str(), row.tier.c_str(), row.gates,
        static_cast<unsigned long long>(row.events), row.fast_ms,
        row.fast_reps_per_sec, row.fast_events_per_sec);
    if (row.speedup > 0.0) std::printf("  %5.1fx vs ref", row.speedup);
    std::printf("\n");
    rows.push_back(std::move(row));
  }

  // Bit-parallel tier: the packed 64-lane route vs the scalar loop over
  // the same 64 replicate streams, zero-delay model. Timings stay out of
  // total_fast_ms so the baseline comparison above keeps its meaning;
  // the tier has its own hardware-independent gate (--min-bp-speedup:
  // both routes timed in this run, so the hardware cancels out).
  std::vector<BpRow> bp_rows;
  double bp_packed_rep_ms = 0.0;
  double bp_scalar_rep_ms = 0.0;
  // The whole tier runs even under --quick: the gate aggregates over all
  // sizes, and the packed route makes each row cheap to time.
  for (const benchgen::BenchmarkSpec& spec : benchgen::bit_parallel_suite()) {
    const netlist::Netlist nl = benchgen::build_benchmark(library, spec);
    const auto stats = opt::scenario_a(nl, spec.seed ^ 0x51ABULL);
    double mean_density = 0.0;
    for (const auto& [net, s] : stats) mean_density += s.density;
    mean_density /= static_cast<double>(stats.size());

    sim::MonteCarloOptions mc;
    mc.sim.seed = spec.seed + 9;
    mc.sim.delay_model = sim::DelayModel::zero;
    mc.sim.measure_time = 40.0 / mean_density;
    mc.sim.warmup_time = mc.sim.measure_time * 0.02;
    mc.replications = 64;
    mc.threads = 1;
    const sim::SimEngine engine(nl, stats, tech, mc.sim);

    BpRow row;
    row.name = spec.name;
    row.gates = nl.gate_count();
    row.nets = nl.net_count();

    // The packed side is fast enough that one 64-lane word is timer
    // noise; average over a few rounds (identical work each time).
    const int rounds = std::max(2, reps / 2);
    mc.packing = sim::PackingMode::packed;
    auto t0 = std::chrono::steady_clock::now();
    sim::SimSummary packed;
    for (int r = 0; r < rounds; ++r) packed = sim::monte_carlo(engine, mc);
    row.packed_ms = ms_since(t0) / rounds;
    row.events = packed.total_events;
    row.packed_reps_per_sec = 1e3 * 64.0 / row.packed_ms;
    truncated = truncated || packed.truncated_replications > 0;

    mc.packing = sim::PackingMode::scalar;
    t0 = std::chrono::steady_clock::now();
    const sim::SimSummary scalar = sim::monte_carlo(engine, mc);
    row.scalar_ms = ms_since(t0);
    row.scalar_reps_per_sec = 1e3 * 64.0 / row.scalar_ms;
    truncated = truncated || scalar.truncated_replications > 0;

    // Tripwire: the two routes contract to be bit-identical; a drift in
    // event counts means the bench is timing different work.
    if (packed.total_events != scalar.total_events) {
      std::cerr << "ERROR: " << row.name
                << ": packed and scalar routes diverged (events "
                << packed.total_events << " vs " << scalar.total_events
                << ")\n";
      return 1;
    }

    row.speedup = row.scalar_ms / row.packed_ms;
    bp_packed_rep_ms += row.packed_ms / 64.0;
    bp_scalar_rep_ms += row.scalar_ms / 64.0;
    std::printf(
        "%-8s bitpar  %5d gates %9llu ev  %8.2f ms  %7.0f reps/s  %5.1fx vs "
        "scalar\n",
        row.name.c_str(), row.gates,
        static_cast<unsigned long long>(row.events), row.packed_ms,
        row.packed_reps_per_sec, row.speedup);
    bp_rows.push_back(std::move(row));
  }
  const double bp_speedup = bp_packed_rep_ms > 0.0
                                ? bp_scalar_rep_ms / bp_packed_rep_ms
                                : -1.0;

  const double scaled_speedup =
      scaled_fast_rep_ms > 0.0 && scaled_reference_rep_ms > 0.0
          ? scaled_reference_rep_ms / scaled_fast_rep_ms
          : -1.0;
  std::printf("total fast %0.2f ms serial, %0.2f ms pooled", total_fast_ms,
              total_parallel_ms);
  if (scaled_speedup > 0.0) {
    std::printf("; scaled-tier speedup %.1fx vs reference loop",
                scaled_speedup);
  }
  if (bp_speedup > 0.0) {
    std::printf("; bit-parallel speedup %.1fx vs scalar", bp_speedup);
  }
  std::printf("\n");

  {
    std::ofstream out(out_path);
    util::JsonWriter json(out);
    json.begin_object();
    json.key("schema_version");
    json.value(1);
    json.key("suite");
    json.value(quick ? "quick" : "full");
    json.key("reps");
    json.value(reps);
    json.key("circuits");
    json.begin_array();
    for (const CircuitRow& row : rows) {
      json.begin_object();
      json.key("name");
      json.value(row.name);
      json.key("tier");
      json.value(row.tier);
      json.key("gates");
      json.value(row.gates);
      json.key("nets");
      json.value(row.nets);
      json.key("replications");
      json.value(row.replications);
      json.key("events");
      json.value(static_cast<std::uint64_t>(row.events));
      json.key("fast_ms");
      json.value(row.fast_ms);
      json.key("fast_reps_per_sec");
      json.value(row.fast_reps_per_sec);
      json.key("fast_events_per_sec");
      json.value(row.fast_events_per_sec);
      if (row.reference_ms >= 0.0) {
        json.key("reference_ms");
        json.value(row.reference_ms);
        json.key("reference_reps_per_sec");
        json.value(row.reference_reps_per_sec);
        json.key("speedup");
        json.value(row.speedup);
      }
      json.key("parallel_ms");
      json.value(row.parallel_ms);
      json.key("parallel_reps_per_sec");
      json.value(row.parallel_reps_per_sec);
      json.key("threads");
      json.value(row.threads);
      json.key("scratch_bytes");
      json.value(static_cast<std::uint64_t>(row.scratch_bytes));
      json.end_object();
    }
    json.end_array();
    json.key("bit_parallel");
    json.begin_array();
    for (const BpRow& row : bp_rows) {
      json.begin_object();
      json.key("name");
      json.value(row.name);
      json.key("gates");
      json.value(row.gates);
      json.key("nets");
      json.value(row.nets);
      json.key("events");
      json.value(static_cast<std::uint64_t>(row.events));
      json.key("packed_ms");
      json.value(row.packed_ms);
      json.key("packed_reps_per_sec");
      json.value(row.packed_reps_per_sec);
      json.key("scalar_ms");
      json.value(row.scalar_ms);
      json.key("scalar_reps_per_sec");
      json.value(row.scalar_reps_per_sec);
      json.key("speedup");
      json.value(row.speedup);
      json.end_object();
    }
    json.end_array();
    json.key("total_fast_ms");
    json.value(total_fast_ms);
    json.key("total_parallel_ms");
    json.value(total_parallel_ms);
    if (scaled_speedup > 0.0) {
      json.key("scaled_speedup");
      json.value(scaled_speedup);
    }
    if (bp_speedup > 0.0) {
      json.key("bp_speedup");
      json.value(bp_speedup);
    }
    json.end_object();
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (truncated) {
    std::cerr << "ERROR: a replication hit the event budget; timings cover "
                 "partial windows\n";
    return 1;
  }

  // Hardware-independent gate: fast path vs reference loop in this very
  // run, on the tier the rewrite exists for.
  if (min_speedup > 0.0) {
    if (scaled_speedup < 0.0) {
      std::cerr << "--min-speedup requires the reference measurement\n";
      return 2;
    }
    if (scaled_speedup < min_speedup) {
      std::cerr << "PERF REGRESSION: scaled-tier MC throughput only "
                << scaled_speedup << "x the reference loop (floor "
                << min_speedup << "x)\n";
      return 1;
    }
  }

  // Same-run gate for the packed lane: scalar vs packed over identical
  // replicate streams, so the ratio is hardware-independent.
  if (min_bp_speedup > 0.0) {
    if (bp_speedup < 0.0) {
      std::cerr << "--min-bp-speedup requires the bit-parallel tier\n";
      return 2;
    }
    if (bp_speedup < min_bp_speedup) {
      std::cerr << "PERF REGRESSION: bit-parallel MC throughput only "
                << bp_speedup << "x the scalar route (floor "
                << min_bp_speedup << "x)\n";
      return 1;
    }
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string expected_suite =
        std::string("\"suite\": \"") + (quick ? "quick" : "full") + "\"";
    if (buffer.str().find(expected_suite) == std::string::npos) {
      std::cerr << "baseline " << baseline_path
                << " was recorded with a different --quick setting than "
                   "this run; regenerate it with matching flags\n";
      return 2;
    }
    // total_fast_ms scales linearly with the replication count, so a
    // reps mismatch would silently skew (or spuriously trip) the gate.
    const double baseline_reps = json_number(buffer.str(), "reps");
    if (baseline_reps > 0.0 && baseline_reps != static_cast<double>(reps)) {
      std::cerr << "baseline " << baseline_path << " was recorded with --reps="
                << baseline_reps << " but this run uses --reps=" << reps
                << "; regenerate it with matching flags\n";
      return 2;
    }
    const double baseline_ms = json_number(buffer.str(), "total_fast_ms");
    if (baseline_ms <= 0.0) {
      std::cerr << "baseline " << baseline_path << " has no total_fast_ms\n";
      return 2;
    }
    const double ratio = total_fast_ms / baseline_ms;
    std::printf("vs baseline: %.2fx (%s %.2f ms, limit %.2fx)\n", ratio,
                baseline_path.c_str(), baseline_ms, max_regression);
    if (ratio > max_regression) {
      std::cerr << "PERF REGRESSION: " << ratio << "x slower than baseline\n";
      return 1;
    }
  }
  return 0;
}
