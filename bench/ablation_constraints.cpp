// Ablation for the paper's two conclusions (Sec. 6):
//  (a) "current libraries may be upgraded with more instances of the
//      gates with different transistor reorderings" — measured as the
//      gap between instance-restricted optimization (pure input
//      reordering on the canonical layouts) and full reordering;
//  (b) "it is possible to obtain power reductions without increasing
//      the delay of the circuit" — measured by re-running the optimizer
//      with a zero gate-delay-increase budget.
//
// Expected shape: full > delay-constrained > instance-restricted > 0,
// with the delay-constrained column showing non-positive circuit delay
// change.

#include <iostream>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "delay/elmore.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace tr;

  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const celllib::Tech tech;

  std::cout << "Ablation: optimization gain vs original mapping under the\n"
               "paper's conclusions (scenario A). 'full' = unconstrained\n"
               "reordering; 'inst' = input reordering within the canonical\n"
               "layout instance; 'delay0' = reordering with zero gate-delay\n"
               "budget (paper: 'power reductions without increasing the "
               "delay').\n\n";

  TextTable table({"circuit", "G", "full [%]", "inst [%]", "delay0 [%]",
                   "delay0 D [%]"});
  RunningStats full_stats, inst_stats, d0_stats, d0_delay;
  for (const char* name : {"b1", "cm151a", "decod", "cm162a", "x2", "z4ml",
                           "cm150a", "9symml", "comp", "apex7", "alu2"}) {
    const auto& spec = benchgen::suite_entry(name);
    const netlist::Netlist original = benchgen::build_benchmark(lib, spec);
    const auto stats = opt::scenario_a(original, spec.seed ^ 0x1234ULL);
    const auto activity = power::propagate_activity(original, stats);
    const double p_orig =
        power::circuit_power(original, activity, tech).total();
    const double t_orig = delay::circuit_delay(original, tech).critical_path;

    const auto reduction = [&](const opt::OptimizeOptions& options,
                               double* delay_change) {
      netlist::Netlist nl = original;
      opt::optimize(nl, stats, tech, options);
      if (delay_change != nullptr) {
        *delay_change = percent_increase(
            t_orig, delay::circuit_delay(nl, tech).critical_path);
      }
      return percent_reduction(
          p_orig, power::circuit_power(nl, activity, tech).total());
    };

    const double full = reduction({}, nullptr);
    opt::OptimizeOptions inst_only;
    inst_only.restrict_to_instance = true;
    const double inst = reduction(inst_only, nullptr);
    opt::OptimizeOptions delay0;
    delay0.max_circuit_delay_increase = 0.0;
    double d_change = 0.0;
    const double d0 = reduction(delay0, &d_change);

    table.add_row({name, std::to_string(original.gate_count()),
                   format_fixed(full, 1), format_fixed(inst, 1),
                   format_fixed(d0, 1), format_fixed(d_change, 1)});
    full_stats.add(full);
    inst_stats.add(inst);
    d0_stats.add(d0);
    d0_delay.add(d_change);
  }
  table.add_separator();
  table.add_row({"average", "", format_fixed(full_stats.mean(), 1),
                 format_fixed(inst_stats.mean(), 1),
                 format_fixed(d0_stats.mean(), 1),
                 format_fixed(d0_delay.mean(), 1)});
  table.print(std::cout);

  std::cout << "\nReading: (full - inst) is the gain that requires new "
               "library instances\n(paper conclusion (a)); 'delay0' shows "
               "power still drops with the delay\nbudget pinned at zero "
               "(paper conclusion (b)).\n";
  return 0;
}
