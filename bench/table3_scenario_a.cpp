// Reproduces paper Table 3, scenario A (Fig. 6a): the circuit is
// embedded in a larger system, so primary-input statistics are random —
// equilibrium probability uniform in [0,1], transition density uniform
// in [0, 1M] transitions/second.
//
// Columns (as in the paper):
//   G = gate count,
//   M = model power reduction, best-vs-worst reordering [%],
//   S = switch-level simulated reduction [%],
//   D = delay increase of the power-best netlist vs the original [%].
//
// Paper averages: M ~ 9%, S ~ 12%, D ~ 4%. Expected shape here: M and S
// positive on average with S noisier (occasionally negative per circuit,
// as in the paper), D small with both signs.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "harness.hpp"
#include "opt/scenario.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace tr;

  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const celllib::Tech tech;

  std::cout << "Table 3 reproduction, scenario A (random PI statistics)\n"
            << "M = model reduction, S = simulated reduction (paired "
               "Monte-Carlo mean\nwith 95% CI half-width, DESIGN.md "
               "Sec. 8.2), D = delay increase\n\n";

  TextTable table({"circuit", "G", "M [%]", "S [%]", "S ±95 [%]", "D [%]"});
  RunningStats m_stats, s_stats, d_stats;
  bool truncated = false;
  std::uint64_t sim_events = 0;
  double sim_seconds = 0.0;
  std::size_t sim_scratch = 0;
  for (const benchgen::BenchmarkSpec& spec : benchgen::table3_suite()) {
    const netlist::Netlist original = benchgen::build_benchmark(lib, spec);
    const auto pi_stats = opt::scenario_a(original, spec.seed ^ 0xA5A5A5A5ULL);
    const bench::PipelineRow row =
        bench::run_pipeline(original, pi_stats, tech, spec.seed + 1, 150.0);
    truncated = truncated || row.sim_truncated;
    sim_events += row.sim_events;
    sim_seconds += row.sim_elapsed_seconds;
    sim_scratch = std::max(sim_scratch, row.sim_scratch_bytes);
    table.add_row({row.name, std::to_string(row.gates),
                   format_fixed(row.model_reduction, 1),
                   format_fixed(row.sim_reduction, 1),
                   format_fixed(row.sim_reduction_ci, 1),
                   format_fixed(row.delay_increase, 1)});
    m_stats.add(row.model_reduction);
    s_stats.add(row.sim_reduction);
    d_stats.add(row.delay_increase);
  }
  table.add_separator();
  table.add_row({"average", "",
                 format_fixed(m_stats.mean(), 1),
                 format_fixed(s_stats.mean(), 1),
                 format_fixed(s_stats.ci95_half_width(), 1),
                 format_fixed(d_stats.mean(), 1)});
  table.print(std::cout);

  std::cout << "\nPaper averages (scenario A): M ~ 9%, S ~ 12%, D ~ 4%.\n"
            << "Benchmarks are seeded synthetic stand-ins for the MCNC\n"
            << "suite at Table 3 gate counts (DESIGN.md Sec. 4.1).\n";
  std::printf(
      "\nsim engine: %llu events in %.2f s (%.2e events/s), "
      "scratch high-water %.1f KiB\n",
      static_cast<unsigned long long>(sim_events), sim_seconds,
      sim_seconds > 0.0 ? static_cast<double>(sim_events) / sim_seconds : 0.0,
      static_cast<double>(sim_scratch) / 1024.0);
  if (truncated) {
    std::cout << "\nWARNING: at least one simulation replication hit the "
                 "event budget;\nthe S column covers partial windows.\n";
    return 1;
  }
  return 0;
}
