// Greedy-vs-anneal quality gate over a pinned circuit/budget grid.
//
// For every pinned (circuit, delay-budget) cell this runs the sequential
// greedy reference engine and the annealing engine (opt::search, DESIGN.md
// Sec. 14) at the SAME budget and compares the committed model power. The
// annealing engine seeds itself with the greedy result and only ever
// commits a strict improvement over that seed, so the per-cell contract is
// hard: anneal must meet or beat greedy everywhere, and across the whole
// grid it must be strictly better in aggregate — otherwise the global
// search layer is dead weight and this binary exits 1 so CI fails.
//
// Two more gates ride along:
//   * delay ceilings — the post-anneal netlist is re-timed from scratch
//     and every primary-output arrival is checked against the reference
//     engine's admissibility rule, orig_arrival * (1 + budget). A
//     violation means the incremental scorer drifted from the real
//     Elmore timing.
//   * wall clock — each anneal run must finish within a per-circuit
//     budget, so search-quality improvements cannot silently buy their
//     wins with unbounded runtime.
//
// Results land in BENCH_anneal.json (uploaded as a CI artifact) so the
// power trajectory of the search layer is recorded run over run.
//
// Usage:
//   perf_anneal_suite [--quick] [--out=PATH] [--seed=N] [--iters=N]
//                     [--max-ms-per-circuit=X]
//
//   --quick                 4-circuit CI subset instead of the full grid
//   --out=PATH              JSON output path (default BENCH_anneal.json)
//   --seed=N                anneal RNG seed (default 1; any seed must pass)
//   --iters=N               anneal moves per gate (default 256)
//   --max-ms-per-circuit=X  wall-clock budget per anneal run (default 10000)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "delay/elmore.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"

namespace {

using namespace tr;

// The pinned grid: small-to-medium Table 3 circuits where the reference
// engine is still fast, crossed with the budgets the paper's
// delay-constrained experiments use. Pinning both axes keeps the gate
// reproducible — a quality regression on any one cell is a hard failure,
// not something a new circuit mix can average away.
const std::vector<std::string>& pinned_circuits(bool quick) {
  static const std::vector<std::string> quick_set{"b1", "cm82a", "majority",
                                                  "decod"};
  static const std::vector<std::string> full_set{
      "b1",     "cm82a", "cm42a", "majority", "cm138a",
      "decod",  "cm85a", "cmb",   "comp"};
  return quick ? quick_set : full_set;
}

const std::vector<double>& pinned_budgets() {
  static const std::vector<double> budgets{0.0, 0.05, 0.10};
  return budgets;
}

struct CellResult {
  std::string name;
  double budget = 0.0;
  int gates = 0;
  double greedy_power = 0.0;
  double anneal_power = 0.0;
  double anneal_ms = 0.0;
  long iterations = 0;
  long uphill_accepted = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_anneal.json";
  std::uint64_t seed = 1;
  int iters = 256;
  double max_ms = 10000.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--iters=", 0) == 0) {
      iters = std::max(1, std::atoi(arg.c_str() + 8));
    } else if (arg.rfind("--max-ms-per-circuit=", 0) == 0) {
      max_ms = std::strtod(arg.c_str() + 21, nullptr);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const celllib::CellLibrary library = celllib::CellLibrary::standard();
  const celllib::Tech tech;

  std::vector<CellResult> cells;
  int failures = 0;
  double greedy_total = 0.0;
  double anneal_total = 0.0;
  int strictly_better = 0;

  for (const std::string& name : pinned_circuits(quick)) {
    const benchgen::BenchmarkSpec& spec = benchgen::suite_entry(name);
    const netlist::Netlist original = benchgen::build_benchmark(library, spec);
    const auto stats = opt::scenario_a(original, spec.seed);
    const delay::CircuitDelay before = delay::circuit_delay(original, tech);
    const std::vector<netlist::NetId> outputs = original.primary_outputs();

    for (const double budget : pinned_budgets()) {
      CellResult cell;
      cell.name = name;
      cell.budget = budget;
      cell.gates = original.gate_count();

      opt::OptimizeOptions greedy_options;
      greedy_options.engine = opt::Engine::reference;
      greedy_options.max_circuit_delay_increase = budget;
      netlist::Netlist greedy_nl = original;
      cell.greedy_power =
          opt::optimize(greedy_nl, stats, tech, greedy_options)
              .model_power_after;

      opt::OptimizeOptions anneal_options;
      anneal_options.engine = opt::Engine::anneal;
      anneal_options.max_circuit_delay_increase = budget;
      anneal_options.anneal.seed = seed;
      anneal_options.anneal.iterations_per_gate = iters;
      netlist::Netlist anneal_nl = original;
      const auto t0 = std::chrono::steady_clock::now();
      const opt::OptimizeReport report =
          opt::optimize(anneal_nl, stats, tech, anneal_options);
      const auto t1 = std::chrono::steady_clock::now();
      cell.anneal_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      cell.anneal_power = report.model_power_after;
      if (report.anneal) {
        cell.iterations = static_cast<long>(report.anneal->iterations);
        cell.uphill_accepted = static_cast<long>(report.anneal->uphill_accepted);
      }

      greedy_total += cell.greedy_power;
      anneal_total += cell.anneal_power;
      if (cell.anneal_power < cell.greedy_power) ++strictly_better;

      const double saved_pct =
          cell.greedy_power > 0.0
              ? 100.0 * (cell.greedy_power - cell.anneal_power) /
                    cell.greedy_power
              : 0.0;
      std::printf(
          "%-10s budget %.2f  %4d gates  greedy %.6e W  anneal %.6e W "
          "(%+.3f%%)  %8.1f ms\n",
          cell.name.c_str(), budget, cell.gates, cell.greedy_power,
          cell.anneal_power, -saved_pct, cell.anneal_ms);

      // Gate 1: never lose to greedy at the same budget. The engine
      // commits the greedy seed on ties, so this is an exact comparison.
      if (cell.anneal_power > cell.greedy_power) {
        std::cerr << "QUALITY REGRESSION: " << name << " at budget " << budget
                  << ": anneal " << cell.anneal_power << " W > greedy "
                  << cell.greedy_power << " W\n";
        ++failures;
      }

      // Gate 2: the committed netlist must honour the reference engine's
      // per-output admissibility ceiling under a from-scratch re-timing.
      const delay::CircuitDelay after = delay::circuit_delay(anneal_nl, tech);
      for (const netlist::NetId out : outputs) {
        const double ceiling = before.net_arrival[out] * (1.0 + budget) + 1e-18;
        if (after.net_arrival[out] > ceiling * (1.0 + 1e-12)) {
          std::cerr << "DELAY VIOLATION: " << name << " at budget " << budget
                    << ": output net " << out << " arrives at "
                    << after.net_arrival[out] << " s, ceiling " << ceiling
                    << " s\n";
          ++failures;
        }
      }

      // Gate 3: wall clock per anneal run.
      if (max_ms > 0.0 && cell.anneal_ms > max_ms) {
        std::cerr << "WALL-CLOCK REGRESSION: " << name << " at budget "
                  << budget << ": anneal took " << cell.anneal_ms
                  << " ms (budget " << max_ms << " ms)\n";
        ++failures;
      }

      cells.push_back(std::move(cell));
    }
  }

  const double saved_pct =
      greedy_total > 0.0
          ? 100.0 * (greedy_total - anneal_total) / greedy_total
          : 0.0;
  std::printf(
      "TOTAL      greedy %.6e W  anneal %.6e W  (%.3f%% saved, %d/%zu cells "
      "strictly better)\n",
      greedy_total, anneal_total, saved_pct, strictly_better, cells.size());

  // Gate 4: the global search must earn its keep somewhere — strictly
  // better than greedy in aggregate, not just never-worse.
  if (!(anneal_total < greedy_total)) {
    std::cerr << "QUALITY REGRESSION: anneal ties greedy on every pinned "
                 "cell; the search layer found nothing\n";
    ++failures;
  }

  std::ostringstream json;
  json << "{\n  \"schema_version\": 1,\n  \"suite\": \""
       << (quick ? "quick" : "full") << "\",\n  \"anneal_seed\": " << seed
       << ",\n  \"iterations_per_gate\": " << iters << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    json << "    {\"name\": \"" << cell.name
         << "\", \"budget\": " << cell.budget
         << ", \"gates\": " << cell.gates
         << ", \"greedy_power_w\": " << cell.greedy_power
         << ", \"anneal_power_w\": " << cell.anneal_power
         << ", \"iterations\": " << cell.iterations
         << ", \"uphill_accepted\": " << cell.uphill_accepted
         << ", \"ms\": " << cell.anneal_ms << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"greedy_total_w\": " << greedy_total
       << ",\n  \"anneal_total_w\": " << anneal_total
       << ",\n  \"saved_pct\": " << saved_pct
       << ",\n  \"cells_strictly_better\": " << strictly_better
       << ",\n  \"failures\": " << failures << "\n}\n";
  std::ofstream(out_path) << json.str();
  std::printf("wrote %s\n", out_path.c_str());

  return failures == 0 ? 0 : 1;
}
