// Quickstart: explore the transistor reorderings of one gate with the
// extended power model — the library's core loop in ~50 lines.
//
//   build a gate -> enumerate reorderings (paper Fig. 4)
//   -> evaluate each with the stochastic power model (paper Sec. 3.3)
//   -> pick the best.
//
// Run: ./build/examples/quickstart

#include <iostream>

#include "celllib/library.hpp"
#include "gategraph/gate_graph.hpp"
#include "opt/optimizer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace tr;
  using boolfn::SignalStats;

  // 1. A cell library (the paper's Table 2 set) and a gate to study:
  //    oai21 computes y = !((a+b) c).
  const celllib::CellLibrary library = celllib::CellLibrary::standard();
  const celllib::Tech tech;  // 5V, SOG-flavoured capacitances
  const celllib::Cell& gate = library.cell("oai21");

  // 2. Input statistics: each signal is a 0-1 stationary Markov process
  //    with an equilibrium probability P and a transition density D.
  //    Here pin c toggles 100x more than pin a.
  const std::vector<SignalStats> inputs{
      {0.5, 1e4},  // a: quiet
      {0.5, 1e5},  // b
      {0.5, 1e6},  // c: hot
  };
  const double external_load = 4.0 * tech.c_gate;  // fanout of 2

  // 3. Score every transistor reordering of the gate.
  const auto scored =
      opt::score_configurations(gate.topology(), inputs, external_load, tech);

  TextTable table({"pull-down order", "pull-up order", "power [uW]"});
  double best = scored.front().second;
  double worst = scored.front().second;
  for (const auto& [config, power] : scored) {
    table.add_row({gategraph::encode(config.nmos()),
                   gategraph::encode(config.pmos()),
                   format_fixed(power * 1e6, 4)});
    best = std::min(best, power);
    worst = std::max(worst, power);
  }
  std::cout << "Reorderings of oai21 (pins a=T0, b=T1, c=T2; c is the hot "
               "input):\n\n";
  table.print(std::cout);
  std::cout << "\nBest configuration saves "
            << format_fixed(100.0 * (worst - best) / worst, 1)
            << "% versus the worst one — same logic function, same area,\n"
               "different internal-node exposure. That margin is what the\n"
               "optimizer (tr::opt::optimize) harvests across a whole "
               "netlist.\n";
  return 0;
}
