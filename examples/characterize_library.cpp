// Library characterisation: emit the Liberty-style description of the
// Table 2 library with one timing/power record per transistor
// configuration — the "library upgraded with more instances" the
// paper's conclusion (a) proposes.
//
// Usage: characterize_library [output.lib] [--canonical-only]

#include <fstream>
#include <iostream>

#include "celllib/library.hpp"
#include "characterize/liberty.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace tr;

  std::string out_path;
  celllib::LibertyOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--canonical-only") {
      options.all_configurations = false;
    } else {
      out_path = arg;
    }
  }

  try {
    const celllib::CellLibrary library = celllib::CellLibrary::standard();
    const celllib::Tech tech;
    if (out_path.empty()) {
      celllib::write_liberty(library, tech, std::cout, options);
    } else {
      std::ofstream out(out_path);
      require(out.good(), "cannot open '" + out_path + "'");
      celllib::write_liberty(library, tech, out, options);
      std::cout << "library written to " << out_path << " ("
                << library.size() << " cells)\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
