// The paper's Sec. 1.1 walk-through: a ripple-carry adder where every
// input has the same equilibrium probability (0.5), yet the carry chain
// accumulates transition density — so the power-optimal transistor
// ordering differs per full-adder stage even though all probabilities
// are equal. This example builds the adder, shows the density profile,
// optimizes it and validates the saving with the switch-level simulator.
//
// Run: ./build/examples/ripple_carry [bits]

#include <cstdlib>
#include <iostream>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"
#include "sim/switch_sim.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tr;

  const int bits = argc > 1 ? std::atoi(argv[1]) : 8;
  const celllib::CellLibrary library = celllib::CellLibrary::standard();
  const celllib::Tech tech;
  const double clock_hz = 1e6;

  netlist::Netlist adder = benchgen::ripple_carry_adder(library, bits);
  std::cout << "rca" << bits << ": " << adder.gate_count() << " gates, "
            << adder.primary_inputs().size() << " inputs\n\n";

  // Latched operands: P = 0.5, D = 0.5 transitions/cycle (scenario B).
  const auto pi_stats = opt::scenario_b(adder, clock_hz);
  const auto activity = power::propagate_activity(adder, pi_stats);

  std::cout << "Carry-chain activity (probabilities stay flat, densities "
               "climb):\n\n";
  TextTable profile({"carry", "P", "D [t/cycle]"});
  for (int i = 0; i <= bits; ++i) {
    const std::string name = i == 0 ? "cin" : "c" + std::to_string(i);
    const netlist::NetId net = adder.find_net(name);
    if (net < 0) continue;
    const auto& s = activity.net_stats[static_cast<std::size_t>(net)];
    profile.add_row({name, format_fixed(s.prob, 3),
                     format_fixed(s.density / clock_hz, 3)});
  }
  profile.print(std::cout);

  // Optimize and report.
  const double before = power::circuit_power(adder, activity, tech).total();
  const opt::OptimizeReport report = opt::optimize(adder, pi_stats, tech);
  const double after = power::circuit_power(adder, activity, tech).total();

  std::cout << "\nOptimizer: " << report.gates_changed << "/"
            << adder.gate_count() << " gates reordered, model power "
            << format_fixed(before * 1e6, 3) << " -> "
            << format_fixed(after * 1e6, 3) << " uW ("
            << format_fixed(percent_reduction(before, after), 1)
            << "% reduction)\n";

  // Validate against the switch-level simulator: compare the optimized
  // netlist with the worst-case ordering under identical input waveforms.
  netlist::Netlist worst = benchgen::ripple_carry_adder(library, bits);
  opt::OptimizeOptions maximize;
  maximize.objective = opt::Objective::maximize_power;
  opt::optimize(worst, pi_stats, tech, maximize);

  sim::SimOptions so;
  so.seed = 2024;
  so.measure_time = 400.0 / (0.5 * clock_hz);  // ~400 toggles per input
  const sim::SimResult sim_best = sim::simulate(adder, pi_stats, tech, so);
  const sim::SimResult sim_worst = sim::simulate(worst, pi_stats, tech, so);
  require(!sim_best.truncated && !sim_worst.truncated,
          "simulation hit the event budget; results cover partial windows");
  const double p_best = sim_best.power;
  const double p_worst = sim_worst.power;
  std::cout << "Switch-level check: best " << format_fixed(p_best * 1e6, 3)
            << " uW vs worst " << format_fixed(p_worst * 1e6, 3) << " uW ("
            << format_fixed(percent_reduction(p_worst, p_best), 1)
            << "% simulated reduction)\n";
  return 0;
}
