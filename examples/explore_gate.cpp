// Interactive gate explorer: dump every transistor reordering of a
// library cell — its H/G path functions per internal node, the per-node
// power breakdown under user-given input statistics, and the per-pin
// Elmore delays. This is paper Fig. 2 + Fig. 5 as a tool.
//
// Usage:
//   explore_gate [cell] [P:D ...]   (one P:D pair per pin)
// Example:
//   ./build/examples/explore_gate oai21 0.5:1e4 0.5:1e5 0.5:1e6

#include <cstdlib>
#include <iostream>
#include <string>

#include "celllib/library.hpp"
#include "delay/elmore.hpp"
#include "gategraph/gate_graph.hpp"
#include "power/gate_power.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tr;
  using boolfn::SignalStats;

  const celllib::CellLibrary library = celllib::CellLibrary::standard();
  const std::string cell_name = argc > 1 ? argv[1] : "oai21";
  const celllib::Cell* cell = library.find(cell_name);
  if (cell == nullptr) {
    std::cerr << "unknown cell '" << cell_name << "'; available:";
    for (const auto& name : library.cell_names()) std::cerr << ' ' << name;
    std::cerr << '\n';
    return 2;
  }

  std::vector<SignalStats> inputs;
  for (int pin = 0; pin < cell->input_count(); ++pin) {
    SignalStats s{0.5, 1e5};
    if (argc > 2 + pin) {
      const std::string arg = argv[2 + pin];
      const auto colon = arg.find(':');
      require(colon != std::string::npos, "expected P:D, got '" + arg + "'");
      s.prob = std::stod(arg.substr(0, colon));
      s.density = std::stod(arg.substr(colon + 1));
    }
    inputs.push_back(s);
  }

  const celllib::Tech tech;
  const double load = 4.0 * tech.c_gate;

  std::cout << "cell " << cell->name() << ", function y = "
            << cell->function().to_binary_string() << " (truth table, "
            << "minterm 0 first)\n"
            << "pins:";
  for (int pin = 0; pin < cell->input_count(); ++pin) {
    std::cout << " " << cell->pin_names()[static_cast<std::size_t>(pin)]
              << "(P=" << inputs[static_cast<std::size_t>(pin)].prob
              << ",D=" << inputs[static_cast<std::size_t>(pin)].density << ")";
  }
  std::cout << "\n#configurations = " << cell->config_count()
            << ", layout instances = " << cell->instance_count() << "\n\n";

  const auto configs = cell->topology().all_reorderings();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const gategraph::GateGraph graph(configs[i]);
    const auto caps = celllib::node_capacitances(graph, tech, load);
    const auto gp = power::evaluate_gate_power(graph, caps, inputs, tech);
    const auto delays = delay::gate_delays(graph, caps, tech);

    std::cout << "configuration " << i << ": pull-down "
              << gategraph::encode(configs[i].nmos()) << ", pull-up "
              << gategraph::encode(configs[i].pmos()) << "\n";
    TextTable table({"node", "H (paths to vdd)", "G (paths to vss)", "P(n)",
                     "D(n) [t/s]", "C [fF]", "power [uW]"});
    for (const auto& node : gp.nodes) {
      table.add_row({graph.node_name(node.node),
                     graph.h_function(node.node).to_binary_string(),
                     graph.g_function(node.node).to_binary_string(),
                     format_fixed(node.prob, 3),
                     format_fixed(node.density, 0),
                     format_fixed(node.capacitance * 1e15, 1),
                     format_fixed(node.power * 1e6, 4)});
    }
    table.print(std::cout);
    std::cout << "total " << format_fixed(gp.total_power * 1e6, 4)
              << " uW; pin delays [ps]:";
    for (int pin = 0; pin < cell->input_count(); ++pin) {
      std::cout << " " << cell->pin_names()[static_cast<std::size_t>(pin)]
                << "="
                << format_fixed(
                       delays.pin_delay[static_cast<std::size_t>(pin)] * 1e12,
                       1);
    }
    std::cout << "\n\n";
  }
  return 0;
}
