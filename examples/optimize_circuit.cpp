// End-to-end flow on a user-supplied circuit: read BLIF (generic .names
// or one of the embedded classics / suite benchmarks), map it onto the
// Table 2 library, optimize for low power under scenario A or B, and
// write the optimized mapped netlist as BLIF next to a report.
//
// Usage:
//   optimize_circuit <circuit> [--scenario A|B] [--activity FILE]
//                    [--seed N] [--out FILE] [--verilog FILE]
//
// <circuit> is a path to a .blif file, the name of an embedded classic
// (c17, fulladder, cmp2, dec2to4) or of a Table 3 suite entry (e.g.
// alu2). --activity supplies measured per-input statistics (overrides
// --scenario); --out also writes a .cfg configuration sidecar; --verilog
// emits a structural Verilog view. Examples:
//   ./build/examples/optimize_circuit c17 --scenario A --seed 7
//   ./build/examples/optimize_circuit my_design.blif --out optimized.blif

#include <fstream>
#include <iostream>
#include <string>

#include "benchgen/classic.hpp"
#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "delay/elmore.hpp"
#include "mapper/mapper.hpp"
#include "netlist/blif.hpp"
#include "netlist/activity_io.hpp"
#include "netlist/config_io.hpp"
#include "netlist/verilog.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using namespace tr;

netlist::Netlist load_circuit(const std::string& name,
                              const celllib::CellLibrary& library) {
  // 1. embedded classic?
  for (const std::string& classic : benchgen::classic_names()) {
    if (classic == name) {
      const auto logic =
          netlist::read_blif_logic_string(benchgen::classic_blif(name), name);
      return mapper::map_network(logic, library);
    }
  }
  // 2. suite entry?
  for (const auto& spec : benchgen::table3_suite()) {
    if (spec.name == name) return benchgen::build_benchmark(library, spec);
  }
  // 3. a BLIF file on disk.
  const auto logic = netlist::read_blif_logic_file(name);
  return mapper::map_network(logic, library);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tr;
  if (argc < 2) {
    std::cerr << "usage: optimize_circuit <circuit.blif|classic|suite-name> "
                 "[--scenario A|B] [--seed N] [--out FILE]\n";
    return 2;
  }
  std::string circuit_name = argv[1];
  std::string scenario = "A";
  std::string out_path;
  std::string verilog_path;
  std::string activity_path;
  std::uint64_t seed = 1;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--scenario") scenario = argv[i + 1];
    else if (flag == "--seed") seed = std::stoull(argv[i + 1]);
    else if (flag == "--out") out_path = argv[i + 1];
    else if (flag == "--verilog") verilog_path = argv[i + 1];
    else if (flag == "--activity") activity_path = argv[i + 1];
  }

  try {
    const celllib::CellLibrary library = celllib::CellLibrary::standard();
    const celllib::Tech tech;
    netlist::Netlist nl = load_circuit(circuit_name, library);
    std::cout << "circuit " << nl.name() << ": " << nl.gate_count()
              << " gates, " << nl.primary_inputs().size() << " PIs, "
              << nl.primary_outputs().size() << " POs\n";

    std::map<netlist::NetId, boolfn::SignalStats> pi_stats;
    if (!activity_path.empty()) {
      std::ifstream act(activity_path);
      require(act.good(), "cannot open activity file '" + activity_path + "'");
      pi_stats = netlist::read_activity(nl, act, activity_path);
    } else {
      pi_stats = scenario == "B" ? opt::scenario_b(nl)
                                 : opt::scenario_a(nl, seed);
    }
    const auto activity = power::propagate_activity(nl, pi_stats);
    const double power_before =
        power::circuit_power(nl, activity, tech).total();
    const double delay_before = delay::circuit_delay(nl, tech).critical_path;

    const opt::OptimizeReport report = opt::optimize(nl, pi_stats, tech);

    const double power_after =
        power::circuit_power(nl, activity, tech).total();
    const double delay_after = delay::circuit_delay(nl, tech).critical_path;

    std::cout << "scenario " << scenario << " (seed " << seed << "):\n"
              << "  gates reordered : " << report.gates_changed << "\n"
              << "  model power     : " << format_fixed(power_before * 1e6, 3)
              << " -> " << format_fixed(power_after * 1e6, 3) << " uW  ("
              << format_fixed(percent_reduction(power_before, power_after), 1)
              << "% reduction)\n"
              << "  critical path   : " << format_fixed(delay_before * 1e9, 2)
              << " -> " << format_fixed(delay_after * 1e9, 2) << " ns  ("
              << format_fixed(percent_increase(delay_before, delay_after), 1)
              << "% change)\n";

    if (!out_path.empty()) {
      std::ofstream out(out_path);
      require(out.good(), "cannot open output file '" + out_path + "'");
      netlist::write_blif(nl, out);
      // BLIF cannot carry transistor orderings; the sidecar restores them
      // (netlist::read_config_sidecar) after re-reading the BLIF.
      std::ofstream cfg(out_path + ".cfg");
      require(cfg.good(), "cannot open sidecar '" + out_path + ".cfg'");
      netlist::write_config_sidecar(nl, cfg);
      std::cout << "  optimized netlist written to " << out_path
                << " (+ configuration sidecar " << out_path << ".cfg)\n";
    }
    if (!verilog_path.empty()) {
      std::ofstream v(verilog_path);
      require(v.good(), "cannot open Verilog file '" + verilog_path + "'");
      netlist::write_verilog(nl, v);
      std::cout << "  structural Verilog written to " << verilog_path << "\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
