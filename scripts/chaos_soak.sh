#!/usr/bin/env bash
# Chaos soak (ISSUE 10): prove the crash-safety layer end to end by
# actually crashing it.
#
#   Phase 1  SIGKILL a checkpointing batch run mid-suite, resume it, and
#            byte-compare the final report against a fresh-process
#            serial oracle — including after deliberately corrupting a
#            journal entry (the torn-write window).
#   Phase 2  SIGKILL the daemon mid-request, restart it on the same
#            port, and let the retrying client (backoff + idempotency
#            key) ride through; the response must be byte-identical to
#            the serial oracle, and a replayed request_id must hit the
#            idempotency cache instead of re-executing.
#   Phase 3  TR_FAULT storm: cycle every registered fault site under
#            load; each run must either pass clean (site not on this
#            workload's path) or fail structurally (exit 3, a
#            fault_injected error object marked retryable) — never
#            crash. The server.request site additionally proves the
#            client retries through a one-shot injected daemon fault.
#
# Usage: chaos_soak.sh <tr_opt> [workdir]
# With a workdir argument the journal/logs survive for CI artifacts.
set -euo pipefail

TR_OPT="$1"
if [ $# -ge 2 ]; then
  WORK="$2"
  mkdir -p "$WORK"
  KEEP_WORK=1
else
  WORK="$(mktemp -d)"
  KEEP_WORK=0
fi

SERVER_PID=""
VICTIM_PID=""
cleanup() {
  for pid in "$SERVER_PID" "$VICTIM_PID"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2> /dev/null; then
      kill -TERM "$pid" 2> /dev/null || true
      for _ in $(seq 1 50); do
        kill -0 "$pid" 2> /dev/null || break
        sleep 0.1
      done
      kill -KILL "$pid" 2> /dev/null || true
    fi
    [ -n "$pid" ] && wait "$pid" 2> /dev/null || true
  done
  [ "$KEEP_WORK" -eq 0 ] && rm -rf "$WORK"
  return 0
}
trap cleanup EXIT

fail() {
  echo "chaos_soak: FAIL: $*" >&2
  exit 1
}

# The soak workload: slow enough (annealing, serial circuits) that a
# SIGKILL lands mid-suite, deterministic output under --no-timing
# --no-cache-stats. Keep flags identical across oracle/crash/resume —
# the checkpoint manifest pins them.
WORKLOAD=(--suite table3 --engine anneal --anneal-iters 512
  --jobs 1 --no-timing --no-cache-stats)

echo "chaos_soak: oracle run (serial, fresh process)"
"$TR_OPT" "${WORKLOAD[@]}" > "$WORK/oracle.json" 2> "$WORK/oracle.log"

# ---------------------------------------------------------------------
# Phase 1: SIGKILL mid-batch, then resume.
# ---------------------------------------------------------------------
echo "chaos_soak: phase 1 - SIGKILL mid-batch + resume"
CKPT="$WORK/checkpoint"
"$TR_OPT" "${WORKLOAD[@]}" --checkpoint "$CKPT" \
  > "$WORK/crashed.json" 2> "$WORK/crashed.log" &
VICTIM_PID=$!

# Deterministic kill point: wait until at least one circuit entry is
# durable, then SIGKILL — no signal handler gets to run, exactly the
# crash the journal protects against.
for _ in $(seq 1 300); do
  if [ -n "$(ls "$CKPT"/circuit-*.jnl 2> /dev/null)" ]; then break; fi
  kill -0 "$VICTIM_PID" 2> /dev/null \
    || fail "batch run exited before journaling anything (too fast?)"
  sleep 0.1
done
[ -n "$(ls "$CKPT"/circuit-*.jnl 2> /dev/null)" ] \
  || fail "no journal entry appeared within 30s"
kill -KILL "$VICTIM_PID"
wait "$VICTIM_PID" 2> /dev/null || true
VICTIM_PID=""

ENTRIES=$(ls "$CKPT"/circuit-*.jnl | wc -l)
TOTAL=$(grep -c '"status"' "$WORK/oracle.json" || true)
echo "chaos_soak: killed with $ENTRIES journal entries durable"

# Corrupt one survivor: truncate its tail (torn write). The resume must
# detect it, warn, and re-optimize that circuit.
DAMAGED="$(ls "$CKPT"/circuit-*.jnl | head -1)"
SIZE=$(wc -c < "$DAMAGED")
head -c $((SIZE / 2)) "$DAMAGED" > "$DAMAGED.tmp" && mv "$DAMAGED.tmp" "$DAMAGED"

"$TR_OPT" "${WORKLOAD[@]}" --checkpoint "$CKPT" --resume \
  > "$WORK/resumed.json" 2> "$WORK/resumed.log"
grep -q "journal .* damaged" "$WORK/resumed.log" \
  || fail "corrupt journal entry was not reported (resumed.log)"
diff "$WORK/oracle.json" "$WORK/resumed.json" > /dev/null \
  || fail "resumed output diverged from the oracle (phase 1)"
echo "chaos_soak: phase 1 OK (resume byte-identical, corruption detected)"

# ---------------------------------------------------------------------
# Phase 2: SIGKILL the daemon mid-request; the client retries through.
# ---------------------------------------------------------------------
echo "chaos_soak: phase 2 - daemon SIGKILL + client retry-through"
start_daemon() {
  "$TR_OPT" --serve --port "$1" --port-file "$WORK/port" "${@:2}" \
    >> "$WORK/daemon_metrics.json" 2>> "$WORK/daemon.log" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && return 0
    kill -0 "$SERVER_PID" 2> /dev/null \
      || fail "daemon exited before binding (daemon.log)"
    sleep 0.1
  done
  fail "daemon never wrote its port file"
}

rm -f "$WORK/port"
start_daemon 0
PORT="$(cat "$WORK/port")"

"$TR_OPT" --connect "127.0.0.1:$PORT" "${WORKLOAD[@]}" \
  --retries 20 --retry-base-ms 250 --timeout-ms 20000 \
  --request-id chaos-soak-1 \
  > "$WORK/client.json" 2> "$WORK/client.log" &
VICTIM_PID=$!

# Kill once the request is demonstrably mid-flight (first progress
# frame observed), restart on the same port while the client backs off.
for _ in $(seq 1 300); do
  grep -q '"type": "progress"' "$WORK/client.log" 2> /dev/null && break
  kill -0 "$VICTIM_PID" 2> /dev/null || fail "client died early (client.log)"
  sleep 0.1
done
grep -q '"type": "progress"' "$WORK/client.log" \
  || fail "no progress frame within 30s"
kill -KILL "$SERVER_PID"
wait "$SERVER_PID" 2> /dev/null || true
SERVER_PID=""
echo "chaos_soak: daemon SIGKILLed mid-request, restarting on port $PORT"
rm -f "$WORK/port"
start_daemon "$PORT"

wait "$VICTIM_PID" || fail "client did not retry through the restart (client.log)"
VICTIM_PID=""
grep -q "retry" "$WORK/client.log" || fail "client never reported a retry"
diff "$WORK/oracle.json" "$WORK/client.json" > /dev/null \
  || fail "retried response diverged from the oracle (phase 2)"

# Idempotent replay: the same request_id again must not re-execute —
# byte-identical response straight from the replay cache.
"$TR_OPT" --connect "127.0.0.1:$PORT" "${WORKLOAD[@]}" \
  --request-id chaos-soak-1 > "$WORK/replayed.json" 2> /dev/null
diff "$WORK/client.json" "$WORK/replayed.json" > /dev/null \
  || fail "replayed response diverged"
"$TR_OPT" --connect "127.0.0.1:$PORT" --shutdown 2> /dev/null
wait "$SERVER_PID" || fail "daemon drain failed"
SERVER_PID=""
grep -q '"replayed": 1' "$WORK/daemon_metrics.json" \
  || fail "metrics did not count the idempotent replay"
echo "chaos_soak: phase 2 OK (retry-through + idempotent replay)"

# ---------------------------------------------------------------------
# Phase 3: TR_FAULT storm over the whole registered-site registry.
# ---------------------------------------------------------------------
echo "chaos_soak: phase 3 - TR_FAULT storm"
SITES=(batch.circuit opt.score celllib.characterize server.request
  parse.blif parse.blif_mapped parse.verilog sim.replicate)
for site in "${SITES[@]}"; do
  STATUS=0
  TR_FAULT="$site" "$TR_OPT" --suite classic --jobs 2 --no-timing \
    --no-cache-stats > "$WORK/fault_$site.json" \
    2> "$WORK/fault_$site.log" || STATUS=$?
  if [ "$STATUS" -ne 0 ] && [ "$STATUS" -ne 3 ]; then
    fail "TR_FAULT=$site: exit $STATUS (crash or misclassified failure)"
  fi
  if [ "$STATUS" -eq 3 ]; then
    grep -q '"code": "fault_injected"' "$WORK/fault_$site.json" \
      || fail "TR_FAULT=$site: no structured fault_injected error"
    grep -q '"retryable": true' "$WORK/fault_$site.json" \
      || fail "TR_FAULT=$site: injected fault not marked retryable"
  fi
  echo "chaos_soak:   site $site -> exit $STATUS"
done

# server.request through the daemon: the fault is one-shot, so a client
# with one retry must fail the first attempt and succeed the second.
rm -f "$WORK/port"
TR_FAULT="server.request" start_daemon 0
# Bash keeps a call-prefix assignment alive after a *function* returns;
# drop it so the oracle rerun below is unpoisoned (the site is
# daemon-only, but explicit beats subtle).
unset TR_FAULT
PORT="$(cat "$WORK/port")"
"$TR_OPT" --connect "127.0.0.1:$PORT" --suite classic --no-timing \
  --retries 3 --retry-base-ms 50 \
  > "$WORK/storm_client.json" 2> "$WORK/storm_client.log" \
  || fail "client did not retry through the injected daemon fault"
grep -q "retry 1" "$WORK/storm_client.log" \
  || fail "expected exactly one retry through the injected fault"
"$TR_OPT" --suite classic --no-timing --no-cache-stats \
  > "$WORK/storm_oracle.json"
diff "$WORK/storm_oracle.json" "$WORK/storm_client.json" > /dev/null \
  || fail "post-fault response diverged from the oracle"
"$TR_OPT" --connect "127.0.0.1:$PORT" --shutdown 2> /dev/null
wait "$SERVER_PID" || fail "storm daemon drain failed"
SERVER_PID=""
echo "chaos_soak: phase 3 OK (8-site storm + retry through injected fault)"

echo "chaos_soak: PASS (oracle $TOTAL circuits, crash at $ENTRIES entries)"
