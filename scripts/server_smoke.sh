#!/usr/bin/env bash
# Server round-trip smoke (ISSUE 8): start `tr_opt --serve`, run the
# classic suite through the framed client, diff the response
# byte-for-byte against the serial batch CLI, then drain via SIGTERM and
# check the drain-time metrics dump. Usage: server_smoke.sh <tr_opt>
set -euo pipefail

TR_OPT="$1"
WORK="$(mktemp -d)"
SERVER_PID=""
# Trap-based teardown (ISSUE 10 satellite): every exit path — including
# a failed assertion under `set -e` — must reap the daemon, never leak
# it holding the port. SIGTERM asks for a graceful drain; if the daemon
# does not exit promptly it is SIGKILLed, and the wait reaps the zombie
# either way.
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2> /dev/null; then
    kill -TERM "$SERVER_PID" 2> /dev/null || true
    for _ in $(seq 1 50); do
      kill -0 "$SERVER_PID" 2> /dev/null || break
      sleep 0.1
    done
    kill -KILL "$SERVER_PID" 2> /dev/null || true
  fi
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$TR_OPT" --serve --port 0 --port-file "$WORK/port" \
  > "$WORK/metrics.json" 2> "$WORK/server.log" &
SERVER_PID=$!

# The daemon writes its ephemeral port once the listener is bound.
for _ in $(seq 1 100); do
  [ -s "$WORK/port" ] && break
  if ! kill -0 "$SERVER_PID" 2> /dev/null; then
    echo "server exited before binding" >&2
    cat "$WORK/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
[ -s "$WORK/port" ] || { echo "server never wrote its port file" >&2; exit 1; }
PORT="$(cat "$WORK/port")"

# Same request served and batch-run must be byte-identical: the served
# response omits timing and cache stats, so mirror that on the CLI.
"$TR_OPT" --connect "127.0.0.1:$PORT" --suite classic --no-timing \
  > "$WORK/served.json" 2> "$WORK/progress.log"
"$TR_OPT" --suite classic --no-timing --no-cache-stats > "$WORK/serial.json"
if ! diff "$WORK/served.json" "$WORK/serial.json"; then
  echo "served response diverged from serial batch output" >&2
  exit 1
fi

# Progress frames streamed for every circuit of the suite.
PROGRESS_COUNT="$(grep -c '"type": "progress"' "$WORK/progress.log")"
if [ "$PROGRESS_COUNT" -ne 4 ]; then
  echo "expected 4 progress frames, saw $PROGRESS_COUNT" >&2
  cat "$WORK/progress.log" >&2
  exit 1
fi

# Graceful drain: SIGTERM stops the listener, finishes in-flight work
# and flushes the metrics dump to stdout before exiting 0.
kill -TERM "$SERVER_PID"
WAIT_STATUS=0
wait "$SERVER_PID" || WAIT_STATUS=$?
SERVER_PID=""
if [ "$WAIT_STATUS" -ne 0 ]; then
  echo "server exited $WAIT_STATUS on SIGTERM drain" >&2
  cat "$WORK/server.log" >&2
  exit 1
fi

for want in '"generator": "tr_opt_server"' '"received": 1' '"ok": 1' \
  '"catalog_cache"' '"evictions"'; do
  if ! grep -qF "$want" "$WORK/metrics.json"; then
    echo "metrics dump missing $want" >&2
    cat "$WORK/metrics.json" >&2
    exit 1
  fi
done

echo "server smoke OK (port $PORT, $PROGRESS_COUNT progress frames)"
